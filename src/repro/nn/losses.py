"""Losses and activations on logits (numerically stable forms).

Everything here is dtype-preserving for floating inputs: float32 logits
produce float32 probabilities/gradients (the inference hot path never
silently upcasts to float64), float64 gradient-check inputs keep float64
precision.  Integer/bool inputs are computed in float64.
"""

from __future__ import annotations

import numpy as np


def _as_float(arr) -> np.ndarray:
    """``arr`` as a floating array, preserving an existing float dtype."""
    z = np.asarray(arr)
    if not np.issubdtype(z.dtype, np.floating):
        # witness-lint: allow[dtype-float64] -- module contract: int/bool inputs compute in double; float inputs keep their dtype
        return z.astype(np.float64)
    return z


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Stable logistic function (dtype-preserving for float inputs)."""
    z = _as_float(z)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax of ``(N, K)`` logits (dtype-preserving)."""
    z = _as_float(z)
    shifted = z - z.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def bce_loss_with_logits(logits: np.ndarray, targets: np.ndarray) -> tuple:
    """Binary cross-entropy on logits.

    Args:
        logits: ``(N,)`` or ``(N, 1)`` raw scores.
        targets: same shape, values in {0, 1} (floats accepted).

    Returns:
        ``(loss, grad)`` — mean loss and gradient w.r.t. the logits with
        the same shape as ``logits``.
    """
    z = _as_float(logits)
    t = np.asarray(targets, dtype=z.dtype).reshape(z.shape)
    # log(1 + exp(-|z|)) + max(z, 0) - z*t  is the stable BCE form.
    loss = np.mean(np.log1p(np.exp(-np.abs(z))) + np.maximum(z, z.dtype.type(0)) - z * t)
    grad = (sigmoid(z) - t) / z.dtype.type(z.size)
    return float(loss), grad


def ce_loss_with_logits(logits: np.ndarray, labels: np.ndarray) -> tuple:
    """Softmax cross-entropy on ``(N, K)`` logits with integer labels.

    Returns ``(loss, grad)`` with ``grad`` shaped like ``logits``.
    """
    z = _as_float(logits)
    y = np.asarray(labels, dtype=int)
    if z.ndim != 2:
        raise ValueError(f"expected (N, K) logits, got shape {z.shape}")
    if y.shape != (z.shape[0],):
        raise ValueError(f"labels shape {y.shape} does not match batch {z.shape[0]}")
    probs = softmax(z)
    n = z.shape[0]
    picked = np.clip(probs[np.arange(n), y], 1e-12, None)
    loss = float(-np.mean(np.log(picked)))
    grad = probs.copy()
    grad[np.arange(n), y] -= 1.0
    return loss, grad / z.dtype.type(n)


def margin_loss(logits: np.ndarray, target_class: np.ndarray, kappa: float = 0.0) -> tuple:
    """Carlini-Wagner style margin: ``max(max_other - target, -kappa)``.

    Minimizing this pushes the target class above every other class by at
    least ``kappa``.  Returns ``(per_sample_loss, grad_wrt_logits)``.
    """
    z = _as_float(logits)
    y = np.asarray(target_class, dtype=int)
    n, k = z.shape
    target_logit = z[np.arange(n), y]
    masked = z.copy()
    masked[np.arange(n), y] = -np.inf
    other_idx = masked.argmax(axis=1)
    other_logit = z[np.arange(n), other_idx]
    margin = other_logit - target_logit
    active = margin > -kappa
    grad = np.zeros_like(z)
    rows = np.arange(n)[active]
    grad[rows, other_idx[active]] += 1.0
    grad[rows, y[active]] -= 1.0
    # Raw margins are returned (sign and depth both matter to attacks);
    # the clamp at -kappa only gates the gradient.
    return margin, grad


def binary_margin_loss(logits: np.ndarray, target: np.ndarray, kappa: float = 0.0) -> tuple:
    """CW margin for the single-logit binary matchers.

    ``target`` 1 means "push the logit positive (match)", 0 the opposite.
    """
    z = _as_float(logits).reshape(-1)
    t = np.asarray(target, dtype=z.dtype).reshape(-1)
    signs = np.where(t > 0.5, z.dtype.type(-1.0), z.dtype.type(1.0))  # minimize -z for target 1
    margin = signs * z
    active = margin > -kappa
    grad = np.where(active, signs, z.dtype.type(0.0)).reshape(np.asarray(logits).shape)
    return margin, grad
