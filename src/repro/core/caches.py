"""Validation caches and differential detection (paper §IV-A Performance).

Three caches exist in the prototype — text, image, and frame — each keyed
by a cryptographic digest of the corresponding display region.  Combined
with differential detection (only re-validating regions that changed
between consecutive screenshots), they are what makes subsequent-frame
validation an order of magnitude cheaper than the first frame
(Table VIII vs Table IX).
"""

from __future__ import annotations

import numpy as np

from repro.vision.diff import changed_regions
from repro.vision.hashing import region_digest


class DigestCache:
    """A dict-backed digest->verdict cache with hit/miss statistics."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._store: dict = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        value = self._store.get(key)
        if value is None and key not in self._store:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        if len(self._store) >= self.max_entries:
            # Drop the oldest entry (insertion order) — a simple FIFO cap.
            self._store.pop(next(iter(self._store)))
        self._store[key] = value

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DifferentialDetector:
    """Tracks the previous frame and reports what changed.

    ``changed(frame)`` returns ``None`` for the first frame (everything
    must be validated), an empty list when the frame is identical (the
    frame-cache fast path), or the changed rectangles in frame
    coordinates.
    """

    def __init__(self, threshold: float = 4.0, merge_radius: int = 4) -> None:
        self.threshold = threshold
        self.merge_radius = merge_radius
        self._previous: np.ndarray | None = None
        self._previous_digest: str | None = None

    def changed(self, frame_pixels: np.ndarray):
        digest = region_digest(frame_pixels)
        if self._previous is None:
            self._previous = frame_pixels.copy()
            self._previous_digest = digest
            return None
        if digest == self._previous_digest:
            return []
        if self._previous.shape != frame_pixels.shape:
            self._previous = frame_pixels.copy()
            self._previous_digest = digest
            return None
        regions = [
            d.rect
            for d in changed_regions(
                self._previous, frame_pixels, threshold=self.threshold, merge_radius=self.merge_radius
            )
        ]
        self._previous = frame_pixels.copy()
        self._previous_digest = digest
        return regions

    def reset(self) -> None:
        self._previous = None
        self._previous_digest = None
