"""Validation caches and differential detection (paper §IV-A Performance).

Three caches exist in the prototype — text, image, and frame — each keyed
by a cryptographic digest of the corresponding display region.  Combined
with differential detection (only re-validating regions that changed
between consecutive screenshots), they are what makes subsequent-frame
validation an order of magnitude cheaper than the first frame
(Table VIII vs Table IX).

:class:`DigestCache` is a thread-safe LRU: a ``get`` hit refreshes the
entry's recency and, at capacity, the least-recently-used entry is
evicted — a shared cross-session cache under pressure keeps the verdicts
sessions actually re-ask for.  ``None`` is reserved as the miss signal
and cannot be stored.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.vision.diff import changed_regions
from repro.vision.hashing import region_digest


#: Internal miss marker: distinguishes "key absent" from any stored value
#: in a single dict lookup, so hit/miss statistics and return semantics
#: can never disagree (``None`` is additionally rejected at ``put`` time,
#: because a ``None`` return is the public miss signal).
_MISSING = object()


class DigestCache:
    """A dict-backed digest->verdict LRU cache with hit/miss statistics.

    Thread-safe: one cache may be shared across every session of a
    :class:`repro.core.service.WitnessService`.  Verifiers of different
    kinds must not share a flat key space (a text-tile digest must never
    satisfy an image-region lookup), so consumers take a namespaced view
    via :meth:`scoped` rather than writing raw keys.

    Semantics:

    * ``get`` returns the stored value, or ``None`` on a miss; every call
      counts exactly one hit or one miss.  ``None`` is therefore not a
      storable value — ``put(key, None)`` raises instead of silently
      creating an entry that reads back as a miss while counting a hit.
    * Eviction is least-recently-used: a ``get`` hit refreshes recency,
      and at capacity the coldest entry is dropped — hot cross-session
      entries survive pressure.  Overwriting an existing key never
      evicts (the store does not grow).
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        # dicts iterate in insertion order; recency is maintained by
        # re-inserting on every hit, so the first key is always the LRU.
        self._store: dict = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Fault-injection seam (``cache.error``): when set, called as
        #: ``fault_hook(op, key)`` before every lookup/store and may
        #: raise.  ``None`` (the default) costs one ``is None`` test.
        #: Consumers must treat a raising lookup as a miss — a broken
        #: cache degrades performance, never a verdict.
        self.fault_hook = None

    def get(self, key: str):
        hook = self.fault_hook
        if hook is not None:
            hook("get", key)
        with self._lock:
            value = self._store.pop(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return None
            self._store[key] = value  # re-insert: most recently used
            self.hits += 1
            return value

    def put(self, key: str, value) -> None:
        if value is None:
            raise ValueError(
                "DigestCache cannot store None: it is indistinguishable from a miss"
            )
        hook = self.fault_hook
        if hook is not None:
            hook("put", key)
        with self._lock:
            if key in self._store:
                self._store.pop(key)  # overwrite: refresh recency, no eviction
            elif len(self._store) >= self.max_entries:
                self._store.pop(next(iter(self._store)))  # evict the LRU entry
                self.evictions += 1
            self._store[key] = value

    def scoped(self, namespace: str) -> "ScopedDigestCache":
        """A view of this cache whose keys live under ``namespace``."""
        return ScopedDigestCache(self, namespace)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """One atomic accounting snapshot (entries + hit/miss/eviction)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "entries": len(self._store),
                "capacity": self.max_entries,
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "hit_rate": hits / total if total else 0.0,
            }


class ScopedDigestCache:
    """A namespaced view over a shared :class:`DigestCache`.

    Every key is prefixed with ``<namespace>/`` before reaching the
    backing store, so two verifier kinds handed views of the same cache
    can never observe each other's verdicts even if their inner digests
    collide.  This is structural defense-in-depth: verifiers also prefix
    their own keys (``text:`` / ``img:``), but that discipline lives in
    each verifier's key-building code — the scoped view enforces
    disjointness regardless of what keys a (future) verifier writes.
    Hit/miss statistics aggregate on the parent.
    """

    def __init__(self, parent: DigestCache, namespace: str) -> None:
        if not namespace:
            raise ValueError("namespace must be non-empty")
        self.parent = parent
        self.namespace = str(namespace)

    def _qualify(self, key: str) -> str:
        return f"{self.namespace}/{key}"

    def get(self, key: str):
        return self.parent.get(self._qualify(key))

    def put(self, key: str, value) -> None:
        self.parent.put(self._qualify(key), value)

    def scoped(self, namespace: str) -> "ScopedDigestCache":
        return ScopedDigestCache(self.parent, f"{self.namespace}/{namespace}")

    def __len__(self) -> int:
        prefix = f"{self.namespace}/"
        with self.parent._lock:
            return sum(1 for k in self.parent._store if k.startswith(prefix))

    @property
    def hits(self) -> int:
        return self.parent.hits

    @property
    def misses(self) -> int:
        return self.parent.misses

    @property
    def evictions(self) -> int:
        return self.parent.evictions

    @property
    def hit_rate(self) -> float:
        return self.parent.hit_rate

    def stats(self) -> dict:
        return self.parent.stats()


class DifferentialDetector:
    """Tracks the previous frame and reports what changed.

    ``changed(frame)`` returns ``None`` for the first frame (everything
    must be validated), an empty list when the frame is identical (the
    frame-cache fast path), or the changed rectangles in frame
    coordinates.
    """

    def __init__(self, threshold: float = 4.0, merge_radius: int = 4) -> None:
        self.threshold = threshold
        self.merge_radius = merge_radius
        self._previous: np.ndarray | None = None
        self._previous_digest: str | None = None

    def changed(self, frame_pixels: np.ndarray):
        digest = region_digest(frame_pixels)
        if self._previous is None:
            self._previous = frame_pixels.copy()
            self._previous_digest = digest
            return None
        if digest == self._previous_digest:
            return []
        if self._previous.shape != frame_pixels.shape:
            self._previous = frame_pixels.copy()
            self._previous_digest = digest
            return None
        regions = [
            d.rect
            for d in changed_regions(
                self._previous, frame_pixels, threshold=self.threshold, merge_radius=self.merge_radius
            )
        ]
        self._previous = frame_pixels.copy()
        self._previous_digest = digest
        return regions

    def reset(self) -> None:
        self._previous = None
        self._previous_digest = None
