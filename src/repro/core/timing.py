"""Request-delay model (paper §VI-B).

vWitness's validation is concurrent with the user session, so the delay
added to the final request is

    L = T(init) + sum_i T(frame_i) + T(request) - T(session)

bounded below by ``T(frame_last) + T(request)``: the last frame can only
be validated once it has been sampled, and request validation can only
start after submission.  The *cutoff session length* is the session
duration beyond which all earlier frames have been absorbed into the
session and only that floor remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SessionTiming:
    """Measured wall-clock costs of one vWitness session (seconds)."""

    t_init: float = 0.0
    frame_times: list = field(default_factory=list)
    frame_sample_times_ms: list = field(default_factory=list)  # virtual clock
    t_request: float = 0.0

    @property
    def t_first_frame(self) -> float:
        return self.frame_times[0] if self.frame_times else 0.0

    @property
    def subsequent_frame_times(self) -> list:
        return self.frame_times[1:]

    def total_validation(self) -> float:
        return self.t_init + sum(self.frame_times) + self.t_request


def request_delay(timing: SessionTiming, session_seconds: float) -> float:
    """The delay L added to the final request for a given session length.

    Models the concurrent pipeline: frames become available at their
    sample instants (rescaled into the session), each takes its measured
    validation time, and validation of frame *i+1* cannot start before
    frame *i* finishes.  Request validation starts at
    ``max(session end, last frame finished)``.
    """
    if session_seconds < 0:
        raise ValueError(f"session length cannot be negative, got {session_seconds}")
    if not timing.frame_times:
        return timing.t_init + timing.t_request

    n = len(timing.frame_times)
    if timing.frame_sample_times_ms:
        if len(timing.frame_sample_times_ms) != n:
            # A mismatch means the caller recorded the two lists out of
            # lockstep — silently modelling uniform arrivals instead
            # would hide the bookkeeping bug and skew every delay curve.
            raise ValueError(
                f"frame_sample_times_ms has {len(timing.frame_sample_times_ms)} "
                f"entries but frame_times has {n}; the lists must be recorded "
                "in lockstep (leave frame_sample_times_ms empty for uniform "
                "arrivals)"
            )
        span = max(timing.frame_sample_times_ms[-1], 1.0)
        arrivals = [
            session_seconds * (t / span) for t in timing.frame_sample_times_ms
        ]
    else:
        arrivals = [session_seconds * (i + 1) / n for i in range(n)]

    finish = timing.t_init
    for arrival, work in zip(arrivals, timing.frame_times):
        start = max(finish, arrival)
        finish = start + work
    request_done = max(finish, session_seconds) + timing.t_request
    return request_done - session_seconds


def cutoff_session_length(
    timing: SessionTiming,
    max_seconds: float = 60.0,
    resolution: float = 0.05,
) -> float:
    """Smallest session length at which L reaches its floor (§VI-B).

    The floor is the asymptotic delay for a very long session — at least
    ``T(frame_last) + T(request)``, and more when several trailing frames
    arrive together at submission time.  We sweep session lengths and
    return the first one whose delay is within half a resolution step of
    that asymptote.
    """
    if not timing.frame_times:
        return 0.0
    floor = request_delay(timing, max_seconds * 100.0)
    t = 0.0
    while t <= max_seconds:
        if request_delay(timing, t) <= floor + resolution / 2:
            return t
        t += resolution
    return max_seconds


def delay_curve(timing: SessionTiming, session_lengths: list) -> list:
    """(session_length, delay) pairs — the data behind Figure 6."""
    return [(s, request_delay(timing, s)) for s in session_lengths]
