"""Display validation (paper §III-C1).

Three steps per sampled frame: (1) determine the visible view port by
matching the frame against the VSPEC's expected appearance, (2) find the
UI elements within the view port, (3) validate each element's rendering
with the CNN verifiers.  Regions with no elements must match the page
background.  Stateful inputs are validated against the appearance of the
currently *tracked* state, and POF pixels are subtracted first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pof import POFObservation, mask_pofs
from repro.core.verifiers import ImageVerifier, TextVerifier, structural_match
from repro.raster.text import char_advance
from repro.vision.components import Rect
from repro.vision.match import best_vertical_offset
from repro.vspec.spec import CharCell, ManifestEntry, VSpec
from repro.web.render import DEFAULT_POF, POFStyle

#: Minimum NCC score for viewport identification; below this the frame
#: does not look like any window of the expected page at all.
VIEWPORT_SCORE_FLOOR = 0.35


@dataclass(frozen=True)
class ElementFailure:
    """One element that failed validation."""

    kind: str
    rect: tuple
    reason: str


@dataclass
class DisplayResult:
    """Outcome of validating one sampled frame."""

    ok: bool
    offset_y: int = 0
    viewport_score: float = 0.0
    failures: list = field(default_factory=list)
    text_invocations: int = 0
    image_invocations: int = 0
    entries_checked: int = 0
    skipped_unchanged: bool = False


class DisplayValidator:
    """Validates sampled frames against one VSPEC."""

    def __init__(
        self,
        vspec: VSpec,
        text_verifier: TextVerifier,
        image_verifier: ImageVerifier,
        pof_style: POFStyle = DEFAULT_POF,
        check_background: bool = True,
    ) -> None:
        self.vspec = vspec
        self.text_verifier = text_verifier
        self.image_verifier = image_verifier
        self.pof_style = pof_style
        self.check_background = check_background
        self._padded_expected: np.ndarray | None = None

    # -- viewport -----------------------------------------------------------

    def locate_viewport(self, frame_pixels: np.ndarray):
        """(offset_y, score) of the frame within the expected appearance."""
        if frame_pixels.shape[1] != self.vspec.width:
            raise ValueError(
                f"frame width {frame_pixels.shape[1]} != VSPEC width {self.vspec.width} "
                "(dishonest extension width?)"
            )
        expected = self.vspec.expected
        if frame_pixels.shape[0] > self.vspec.height:
            # Page shorter than the client viewport: the browser shows
            # background below the page end, so the search target is the
            # expected appearance padded with background rows.
            if (
                self._padded_expected is None
                or self._padded_expected.shape[0] < frame_pixels.shape[0]
            ):
                pad_rows = frame_pixels.shape[0] - self.vspec.height
                self._padded_expected = np.vstack(
                    [expected, np.full((pad_rows, self.vspec.width), self.vspec.background)]
                )
            expected = self._padded_expected
        match = best_vertical_offset(frame_pixels, expected, stride=4)
        return match.offset, match.score

    # -- validation --------------------------------------------------------------

    def validate(
        self,
        frame_pixels: np.ndarray,
        tracked_inputs: dict | None = None,
        pof_obs: POFObservation | None = None,
        changed_rects: list | None = None,
        viewport: tuple | None = None,
    ) -> DisplayResult:
        """Validate one frame.

        Args:
            tracked_inputs: the interaction tracker's current name->value
                map (stateful elements are expected to display it).
            pof_obs: POFs already extracted from this frame (their pixels
                are masked before content verification).
            changed_rects: frame-coordinate rectangles from differential
                detection; only entries intersecting them are re-verified.
                ``None`` means verify everything visible.
            viewport: optional precomputed ``(offset, score)`` from
                :meth:`locate_viewport` (avoids locating twice per frame).
        """
        tracked_inputs = tracked_inputs or {}
        t0_text = self.text_verifier.invocations
        t0_image = self.image_verifier.invocations
        result = DisplayResult(ok=True)

        offset, score = viewport if viewport is not None else self.locate_viewport(frame_pixels)
        result.offset_y = offset
        result.viewport_score = score
        if score < VIEWPORT_SCORE_FLOOR:
            result.ok = False
            result.failures.append(
                ElementFailure("viewport", (0, offset, 0, 0), f"no viewport match (score={score:.2f})")
            )
            return result

        frame_h = frame_pixels.shape[0]
        viewport = Rect(0, offset, self.vspec.width, frame_h)

        clean = frame_pixels
        if pof_obs is not None and pof_obs.present:
            clean = mask_pofs(frame_pixels, pof_obs, self.pof_style)

        entries = self.vspec.visible_entries(viewport)
        if changed_rects is not None:
            page_changed = [r.translated(0, offset) for r in changed_rects]
            entries = [
                e for e in entries if any(e.rect.expanded(6).intersects(r) for r in page_changed)
            ]
            if not changed_rects:
                result.skipped_unchanged = True

        for entry in entries:
            self._validate_entry(entry, clean, offset, viewport, tracked_inputs, result)
        result.entries_checked = len(entries)

        if self.check_background and changed_rects is None:
            self._validate_background(clean, offset, viewport, result)

        result.text_invocations = self.text_verifier.invocations - t0_text
        result.image_invocations = self.image_verifier.invocations - t0_image
        return result

    # -- per-entry dispatch ----------------------------------------------------

    def _validate_entry(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        tracked_inputs: dict,
        result: DisplayResult,
    ) -> None:
        if entry.kind == "text":
            # Only fully visible cells are judged; half-scrolled glyphs are
            # validated once the viewport settles (paper: everything the
            # user can *see* is checked — a clipped glyph is checked as
            # part of the next frame it is fully visible in).
            visible_cells = [c for c in entry.chars if viewport.contains(c.rect)]
            verdicts = self.text_verifier.verify_cells(
                frame_pixels, visible_cells, offset_x=0, offset_y=offset,
                background=self.vspec.background,
            )
            for cell, verdict in zip(visible_cells, verdicts):
                if not verdict:
                    result.ok = False
                    result.failures.append(
                        ElementFailure("text", cell.rect.as_tuple(), f"character {cell.char!r} mismatch")
                    )
        elif entry.kind == "image":
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return  # only partially visible; skip until fully shown
            expected = self.vspec.expected_region(entry.rect)
            if not self.image_verifier.verify_region(region, expected, self.vspec.background):
                result.ok = False
                result.failures.append(
                    ElementFailure(entry.kind, entry.rect.as_tuple(), "region mismatch")
                )
        elif entry.kind == "button":
            # Button chrome is UI structure, not content imagery; the label
            # text has its own text entry in the manifest.
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return
            expected = self.vspec.expected_region(entry.rect)
            if not structural_match(region, expected):
                result.ok = False
                result.failures.append(
                    ElementFailure(entry.kind, entry.rect.as_tuple(), "button chrome mismatch")
                )
        elif entry.kind == "input":
            self._validate_text_input(entry, frame_pixels, offset, viewport, tracked_inputs, result)
        elif entry.kind in ("checkbox", "radio", "select"):
            state = str(tracked_inputs.get(entry.input_name, entry.initial_value))
            if state not in entry.state_appearances:
                result.ok = False
                result.failures.append(
                    ElementFailure(entry.kind, entry.rect.as_tuple(), f"no appearance for state {state!r}")
                )
                return
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return
            expected = entry.state_appearances[state]
            if not structural_match(region, expected):
                result.ok = False
                result.failures.append(
                    ElementFailure(
                        entry.kind, entry.rect.as_tuple(), f"does not display state {state!r}"
                    )
                )
                return
            if entry.kind == "select":
                # The selected option's text is dynamic content: verify the
                # characters with the text model on top of the chrome match.
                self._verify_select_text(entry, state, frame_pixels, offset, result)
        elif entry.kind in ("scroll-v", "scroll-h"):
            self._validate_scrollable(entry, frame_pixels, offset, viewport, result)
        else:  # pragma: no cover - manifest kinds are closed
            raise ValueError(f"unknown entry kind {entry.kind!r}")

    def _verify_select_text(
        self, entry: ManifestEntry, state: str, frame_pixels: np.ndarray, offset: int, result: DisplayResult
    ) -> None:
        """Verify the displayed option string of a select box (14px text)."""
        advance = char_advance(14)
        cells = [
            CharCell(entry.rect.x + 6 + i * advance, entry.rect.y + 8, advance, 14, ch)
            for i, ch in enumerate(state)
            if ch != " "
        ]
        verdicts = self.text_verifier.verify_cells(
            frame_pixels, cells, offset_x=0, offset_y=offset, background=252.0
        )
        for cell, verdict in zip(cells, verdicts):
            if not verdict:
                result.ok = False
                result.failures.append(
                    ElementFailure(
                        "select",
                        cell.rect.as_tuple(),
                        f"{entry.input_name}: option char {cell.char!r} mismatch",
                    )
                )

    def _observed_region(
        self, frame_pixels: np.ndarray, rect: Rect, offset: int, viewport: Rect
    ) -> np.ndarray | None:
        """Crop an element's region from the frame; None unless fully visible."""
        if not viewport.contains(rect):
            return None
        fy = rect.y - offset
        return frame_pixels[fy : fy + rect.h, rect.x : rect.x2]

    def _validate_text_input(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        tracked_inputs: dict,
        result: DisplayResult,
    ) -> None:
        """A free-text input must display exactly the tracked value."""
        if not viewport.contains(entry.rect):
            return
        value = str(tracked_inputs.get(entry.input_name, entry.initial_value))
        box = entry.rect
        advance = char_advance(entry.text_size)
        origin_x = box.x + 6  # INPUT_PAD_X
        origin_y = box.y + (box.h - entry.text_size) // 2
        cells = [
            CharCell(origin_x + i * advance, origin_y, advance, entry.text_size, ch)
            for i, ch in enumerate(value)
            if ch != " " and origin_x + (i + 1) * advance < box.x2
        ]
        verdicts = self.text_verifier.verify_cells(
            frame_pixels, cells, offset_x=0, offset_y=offset, background=252.0
        )
        for cell, verdict in zip(cells, verdicts):
            if not verdict:
                result.ok = False
                result.failures.append(
                    ElementFailure(
                        "input",
                        cell.rect.as_tuple(),
                        f"{entry.input_name}: displayed char != tracked {cell.char!r}",
                    )
                )
        # Beyond the value, the field must be empty (no extra content).
        tail_x = origin_x + len(value) * advance + 2
        if tail_x < box.x2 - 2:
            fy0 = box.y - offset + 2
            tail = frame_pixels[fy0 : box.y2 - offset - 2, tail_x : box.x2 - 2]
            if tail.size and float(np.mean(tail < 200.0)) > 0.005:
                result.ok = False
                result.failures.append(
                    ElementFailure(
                        "input",
                        box.as_tuple(),
                        f"{entry.input_name}: unexpected content beyond tracked value",
                    )
                )

    def _validate_scrollable(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        result: DisplayResult,
    ) -> None:
        """Nested-VSPEC validation of an independently scrollable element."""
        nested = self.vspec.nested.get(entry.nested_id)
        if nested is None:
            result.ok = False
            result.failures.append(
                ElementFailure(entry.kind, entry.rect.as_tuple(), "missing nested VSPEC")
            )
            return
        if not viewport.contains(entry.rect):
            return
        fy = entry.rect.y - offset
        interior = frame_pixels[fy + 1 : fy + entry.rect.h - 1, entry.rect.x + 1 : entry.rect.x2 - 1].copy()
        # List-selection shading is element state, not content: normalize it.
        selection_band = np.abs(interior - self.pof_style.list_selection_intensity) <= 6.0
        interior[selection_band] = 252.0

        expected = nested.expected
        pad_w = expected.shape[1] - interior.shape[1]
        if pad_w < 0:
            result.ok = False
            result.failures.append(
                ElementFailure(entry.kind, entry.rect.as_tuple(), "observed wider than nested spec")
            )
            return
        # Align widths (border crop makes the interior 2px narrower).
        expected_view = expected[:, 1 : 1 + interior.shape[1]] if pad_w else expected
        match = best_vertical_offset(interior, expected_view, stride=2)
        if match.score < VIEWPORT_SCORE_FLOOR:
            result.ok = False
            result.failures.append(
                ElementFailure(
                    entry.kind, entry.rect.as_tuple(), f"nested viewport unmatched (score={match.score:.2f})"
                )
            )
            return
        nested_viewport = Rect(0, match.offset, interior.shape[1], interior.shape[0])
        for sub in nested.entries:
            if sub.kind != "text" or not sub.rect.intersects(nested_viewport):
                continue
            cells = [c for c in sub.chars if nested_viewport.contains(c.rect)]
            adjusted = [
                CharCell(c.x - 1, c.y, c.w, c.h, c.char) for c in cells
            ]  # interior crop removed the 1px border column
            verdicts = self.text_verifier.verify_tiles(
                [
                    _nested_tile(interior, c, match.offset)
                    for c in adjusted
                ],
                [c.char for c in adjusted],
            )
            for cell, verdict in zip(adjusted, verdicts):
                if not verdict:
                    result.ok = False
                    result.failures.append(
                        ElementFailure(
                            "scroll-text",
                            cell.rect.as_tuple(),
                            f"list row character {cell.char!r} mismatch",
                        )
                    )

    def _validate_background(
        self, frame_pixels: np.ndarray, offset: int, viewport: Rect, result: DisplayResult
    ) -> None:
        """Regions without UI elements must match the background color."""
        mask = np.ones(frame_pixels.shape, dtype=bool)
        for entry in self.vspec.visible_entries(viewport):
            grown = entry.rect.expanded(8)
            y0 = max(grown.y - offset, 0)
            y1 = min(grown.y2 - offset, frame_pixels.shape[0])
            x0 = max(grown.x, 0)
            x1 = min(grown.x2, frame_pixels.shape[1])
            if y1 > y0 and x1 > x0:
                mask[y0:y1, x0:x1] = False
        if not mask.any():
            return
        deviation = np.abs(frame_pixels[mask] - self.vspec.background)
        bad_fraction = float(np.mean(deviation > 25.0))
        if bad_fraction > 0.002:
            result.ok = False
            result.failures.append(
                ElementFailure(
                    "background",
                    viewport.as_tuple(),
                    f"{bad_fraction * 100:.2f}% of background pixels off-color",
                )
            )


def _nested_tile(interior: np.ndarray, cell: CharCell, nested_offset: int) -> np.ndarray:
    """Glyph tile extraction inside a scrollable's interior raster."""
    from repro.core.verifiers import glyph_tile_from_frame

    return glyph_tile_from_frame(interior, cell, offset_x=0, offset_y=nested_offset, background=252.0)
