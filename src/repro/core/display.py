"""Display validation (paper §III-C1).

Three steps per sampled frame: (1) determine the visible view port by
matching the frame against the VSPEC's expected appearance, (2) find the
UI elements within the view port, (3) validate each element's rendering
with the CNN verifiers.  Regions with no elements must match the page
background.  Stateful inputs are validated against the appearance of the
currently *tracked* state, and POF pixels are subtracted first.

Step (3) is two-phase.  A **collect** pass walks the whole manifest and
funnels every CNN unit input of the frame — glyph tiles from all text
entries, 32x32 observed/expected pairs from all image regions — into one
:class:`~repro.core.verifiers.ValidationPlan`, recording a deferred
failure emitter per entry (structural/chrome checks are plain numpy and
resolve during collection).  An **execute** pass then runs the plan as a
single vectorized forward per model kind (plus one batched round per
alignment-retry ring) and the emitters scatter verdicts back into
per-entry :class:`ElementFailure`\\ s, in manifest order.  Whether those
forwards are vectorized or per-unit is the verifiers' ``batched`` flag;
the verdicts are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pof import POFObservation, mask_pofs
from repro.obs.spans import maybe_span
from repro.raster.stacks import reference_stack
from repro.core.verifiers import (
    ImageVerifier,
    TextVerifier,
    ValidationPlan,
    structural_match,
)
from repro.raster.text import char_advance
from repro.vision.components import Rect
from repro.vision.image import DTYPE as RASTER_DTYPE
from repro.vision.image import Image
from repro.vision.match import best_vertical_offset
from repro.vspec.spec import CharCell, ManifestEntry, VSpec
from repro.web.render import DEFAULT_POF, POFStyle, draw_input_value

#: Minimum NCC score for viewport identification; below this the frame
#: does not look like any window of the expected page at all.
VIEWPORT_SCORE_FLOOR = 0.35


@dataclass(frozen=True)
class ElementFailure:
    """One element that failed validation."""

    kind: str
    rect: tuple
    reason: str


@dataclass
class DisplayResult:
    """Outcome of validating one sampled frame."""

    ok: bool
    offset_y: int = 0
    viewport_score: float = 0.0
    failures: list = field(default_factory=list)
    text_invocations: int = 0
    image_invocations: int = 0
    entries_checked: int = 0
    skipped_unchanged: bool = False
    # Plan-size statistics (frame-level batching observability): how many
    # unit inputs the collect phase gathered and how many model forward
    # passes the execute phase actually ran for this frame.
    plan_text_units: int = 0
    plan_image_pairs: int = 0
    text_retry_rounds: int = 0
    text_forwards: int = 0
    image_forwards: int = 0


class DisplayValidator:
    """Validates sampled frames against one VSPEC."""

    def __init__(
        self,
        vspec: VSpec,
        text_verifier: TextVerifier,
        image_verifier: ImageVerifier,
        pof_style: POFStyle = DEFAULT_POF,
        check_background: bool = True,
        runtime=None,
        tracer=None,
    ) -> None:
        self.vspec = vspec
        self.text_verifier = text_verifier
        self.image_verifier = image_verifier
        self.pof_style = pof_style
        self.check_background = check_background
        #: Shared :class:`~repro.runtime.executor.ValidationExecutor`;
        #: when set, the execute phase overlaps the text and image plans
        #: on the runtime (and the verifiers coalesce their forwards with
        #: every other session's rounds).
        self.runtime = runtime
        #: Optional :class:`repro.obs.spans.SpanTracer` timing the
        #: collect/execute/scatter phases; ``None`` = no-op fast path.
        self.tracer = tracer
        self._stateful_key: tuple | None = None
        self._stateful_expected: np.ndarray | None = None
        self._padded_key: tuple | None = None
        self._padded_expected: np.ndarray | None = None
        #: The reusable frame plan: pooled transport buffers stay resident
        #: across frames (reset per validate), so steady-state collection
        #: writes crops into already-allocated memory.
        self._plan = ValidationPlan()

    # -- viewport -----------------------------------------------------------

    def _expected_for(self, tracked_inputs: dict | None) -> np.ndarray:
        """The expected appearance under the currently *tracked* state.

        The VSPEC raster shows every input empty/initial, but a sampled
        mid-session frame shows whatever the user has entered so far.  On
        pages with repetitive structure (tall forms), matching a filled
        frame against the empty-state raster can make a *wrong* offset
        outscore the true one — the soak harness caught exactly that —
        so the search target composes the tracked state into the raster:
        typed values drawn at each input's text origin (reference stack),
        and each visual input's per-state appearance pasted in.  Cached
        per tracked-state, which only changes on accepted hints.
        """
        tracked_inputs = tracked_inputs or {}
        overlays: dict = {}
        for entry in self.vspec.input_entries():
            value = str(tracked_inputs.get(entry.input_name, entry.initial_value))
            if value != str(entry.initial_value) and (
                entry.kind == "input" or value in entry.state_appearances
            ):
                overlays[entry.input_name] = (entry, value)
        if not overlays:
            self._stateful_key = None
            return self.vspec.expected
        key = tuple(sorted((name, v) for name, (_e, v) in overlays.items()))
        if key == self._stateful_key and self._stateful_expected is not None:
            return self._stateful_expected
        stack = reference_stack()
        if self._stateful_key is not None and self._stateful_expected is not None:
            # Incremental recomposition: during active typing the state
            # changes nearly every frame, but almost always in a single
            # field — restore just the changed entries' regions from the
            # pristine raster and redraw those, instead of copying the
            # whole page raster per keystroke.
            canvas = Image(self._stateful_expected)
            prev = dict(self._stateful_key)
            new = {name: v for name, (_e, v) in overlays.items()}
            stale = {n for n in set(prev) | set(new) if prev.get(n) != new.get(n)}
            for name in stale:
                box = self.vspec.entry_for_input(name).rect
                canvas.pixels[box.y : box.y2, box.x : box.x2] = self.vspec.expected[
                    box.y : box.y2, box.x : box.x2
                ]
            todo = [overlays[n] for n in stale if n in overlays]
        else:
            canvas = Image(self.vspec.expected.copy())
            todo = list(overlays.values())
        for entry, value in todo:
            box = entry.rect
            if entry.kind == "input":
                # clear_interior wipes the baked initial value (drawing
                # over it would overstrike) while preserving the border;
                # the helper shares the renderer's origin/truncation.
                draw_input_value(
                    canvas, box, value, entry.text_size, stack, clear_interior=True
                )
            else:
                canvas.pixels[box.y : box.y2, box.x : box.x2] = entry.state_appearances[value]
        self._stateful_key = key
        self._stateful_expected = canvas.pixels
        return canvas.pixels

    def locate_viewport(self, frame_pixels: np.ndarray, tracked_inputs: dict | None = None):
        """(offset_y, score) of the frame within the expected appearance.

        ``tracked_inputs`` (the interaction tracker's current state) keeps
        the search target faithful to what an honest display shows
        mid-session; omitting it matches against the initial-state raster.
        """
        if frame_pixels.shape[1] != self.vspec.width:
            raise ValueError(
                f"frame width {frame_pixels.shape[1]} != VSPEC width {self.vspec.width} "
                "(dishonest extension width?)"
            )
        expected = self._expected_for(tracked_inputs)
        if frame_pixels.shape[0] > self.vspec.height:
            # Page shorter than the client viewport: the browser shows
            # background below the page end, so the search target is the
            # expected appearance padded with background rows.  Keyed by
            # the tracked-state key (None = initial-state raster), never
            # by array identity — a recycled id must not alias the cache.
            pad_key = (self._stateful_key, frame_pixels.shape[0])
            if self._padded_key != pad_key or self._padded_expected is None:
                pad_rows = frame_pixels.shape[0] - self.vspec.height
                self._padded_expected = np.vstack(
                    [expected, np.full((pad_rows, self.vspec.width), self.vspec.background, dtype=RASTER_DTYPE)]
                )
                self._padded_key = pad_key
            expected = self._padded_expected
        match = best_vertical_offset(frame_pixels, expected, stride=4)
        return match.offset, match.score

    # -- validation --------------------------------------------------------------

    def validate(
        self,
        frame_pixels: np.ndarray,
        tracked_inputs: dict | None = None,
        pof_obs: POFObservation | None = None,
        changed_rects: list | None = None,
        viewport: tuple | None = None,
    ) -> DisplayResult:
        """Validate one frame.

        Args:
            tracked_inputs: the interaction tracker's current name->value
                map (stateful elements are expected to display it).
            pof_obs: POFs already extracted from this frame (their pixels
                are masked before content verification).
            changed_rects: frame-coordinate rectangles from differential
                detection; only entries intersecting them are re-verified.
                ``None`` means verify everything visible.
            viewport: optional precomputed ``(offset, score)`` from
                :meth:`locate_viewport` (avoids locating twice per frame).
        """
        tracked_inputs = tracked_inputs or {}
        t0_text = self.text_verifier.invocations
        t0_image = self.image_verifier.invocations
        t0_text_fwd = self.text_verifier.forwards
        t0_image_fwd = self.image_verifier.forwards
        result = DisplayResult(ok=True)

        if viewport is not None:
            offset, score = viewport
        else:
            with maybe_span(self.tracer, "frame.locate"):
                offset, score = self.locate_viewport(frame_pixels, tracked_inputs)
        result.offset_y = offset
        result.viewport_score = score
        if score < VIEWPORT_SCORE_FLOOR:
            result.ok = False
            result.failures.append(
                ElementFailure("viewport", (0, offset, 0, 0), f"no viewport match (score={score:.2f})")
            )
            return result

        frame_h = frame_pixels.shape[0]
        viewport = Rect(0, offset, self.vspec.width, frame_h)

        clean = frame_pixels
        if pof_obs is not None and pof_obs.present:
            clean = mask_pofs(frame_pixels, pof_obs, self.pof_style)

        entries = self.vspec.visible_entries(viewport)
        if changed_rects is not None:
            page_changed = [r.translated(0, offset) for r in changed_rects]
            entries = [
                e for e in entries if any(e.rect.expanded(6).intersects(r) for r in page_changed)
            ]
            if not changed_rects:
                result.skipped_unchanged = True

        # Phase 1 (collect): gather every unit input of the frame into the
        # reused plan (pooled buffers, reset per frame); each entry
        # registers a deferred emitter that scatters the executed verdicts
        # back into per-entry failures, in entry order.
        plan = self._plan
        with maybe_span(self.tracer, "plan.collect"):
            plan.reset()
            deferred: list = []
            for entry in entries:
                self._collect_entry(
                    entry, clean, offset, viewport, tracked_inputs, plan, deferred
                )
        result.entries_checked = len(entries)

        # Phase 2 (execute): one vectorized forward per model kind (plus
        # batched alignment-retry rings), then scatter.  On a shared
        # runtime the two kinds execute concurrently and their forwards
        # coalesce with concurrent sessions' rounds.
        with maybe_span(self.tracer, "plan.execute"):
            if self.runtime is not None:
                text_verdicts, image_verdicts = self.runtime.execute_plan(
                    plan, self.text_verifier, self.image_verifier
                )
            else:
                text_verdicts = self.text_verifier.execute_plan(plan)
                image_verdicts = self.image_verifier.execute_plan(plan)
        with maybe_span(self.tracer, "verdict.scatter"):
            for emit in deferred:
                emit(result, text_verdicts, image_verdicts)

        if self.check_background and changed_rects is None:
            self._validate_background(clean, offset, viewport, result)

        result.plan_text_units = plan.text_unit_count
        result.plan_image_pairs = plan.image_pair_count
        result.text_retry_rounds = plan.text_retry_rounds
        result.text_invocations = self.text_verifier.invocations - t0_text
        result.image_invocations = self.image_verifier.invocations - t0_image
        result.text_forwards = self.text_verifier.forwards - t0_text_fwd
        result.image_forwards = self.image_verifier.forwards - t0_image_fwd
        return result

    # -- per-entry collection --------------------------------------------------

    def _collect_entry(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        tracked_inputs: dict,
        plan: ValidationPlan,
        deferred: list,
    ) -> None:
        """Queue one entry's unit inputs and its deferred failure emitter.

        Structural (non-CNN) checks resolve immediately during collection;
        their verdicts still emit through ``deferred`` so failures appear
        in manifest-entry order regardless of check kind.
        """
        if entry.kind == "text":
            # Only fully visible cells are judged; half-scrolled glyphs are
            # validated once the viewport settles (paper: everything the
            # user can *see* is checked — a clipped glyph is checked as
            # part of the next frame it is fully visible in).
            visible_cells = [c for c in entry.chars if viewport.contains(c.rect)]
            cell_range = plan.add_cells(
                frame_pixels, visible_cells, offset_x=0, offset_y=offset,
                background=self.vspec.background,
            )
            deferred.append(self._text_emitter(visible_cells, cell_range))
        elif entry.kind == "image":
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return  # only partially visible; skip until fully shown
            expected = self.vspec.expected_region(entry.rect)
            if region.shape != expected.shape:
                deferred.append(_fixed_failure(entry.kind, entry.rect, "region mismatch"))
                return
            group = plan.add_region(region, expected, self.vspec.background)

            def emit_image(result, _text_verdicts, image_verdicts, entry=entry, group=group):
                if not image_verdicts[group]:
                    result.ok = False
                    result.failures.append(
                        ElementFailure(entry.kind, entry.rect.as_tuple(), "region mismatch")
                    )

            deferred.append(emit_image)
        elif entry.kind == "button":
            # Button chrome is UI structure, not content imagery; the label
            # text has its own text entry in the manifest.
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return
            expected = self.vspec.expected_region(entry.rect)
            if not structural_match(region, expected):
                deferred.append(_fixed_failure(entry.kind, entry.rect, "button chrome mismatch"))
        elif entry.kind == "input":
            self._collect_text_input(
                entry, frame_pixels, offset, viewport, tracked_inputs, plan, deferred
            )
        elif entry.kind in ("checkbox", "radio", "select"):
            state = str(tracked_inputs.get(entry.input_name, entry.initial_value))
            if state not in entry.state_appearances:
                deferred.append(
                    _fixed_failure(entry.kind, entry.rect, f"no appearance for state {state!r}")
                )
                return
            region = self._observed_region(frame_pixels, entry.rect, offset, viewport)
            if region is None:
                return
            expected = entry.state_appearances[state]
            if not structural_match(region, expected):
                deferred.append(
                    _fixed_failure(entry.kind, entry.rect, f"does not display state {state!r}")
                )
                return
            if entry.kind == "select":
                # The selected option's text is dynamic content: verify the
                # characters with the text model on top of the chrome match.
                self._collect_select_text(entry, state, frame_pixels, offset, plan, deferred)
        elif entry.kind in ("scroll-v", "scroll-h"):
            self._collect_scrollable(entry, frame_pixels, offset, viewport, plan, deferred)
        else:  # pragma: no cover - manifest kinds are closed
            raise ValueError(f"unknown entry kind {entry.kind!r}")

    def _text_emitter(self, cells: list, cell_range: slice):
        """Emitter for plain text cells: one failure per mismatched glyph."""

        def emit(result, text_verdicts, _image_verdicts):
            for cell, verdict in zip(cells, text_verdicts[cell_range]):
                if not verdict:
                    result.ok = False
                    result.failures.append(
                        ElementFailure("text", cell.rect.as_tuple(), f"character {cell.char!r} mismatch")
                    )

        return emit

    def _collect_select_text(
        self,
        entry: ManifestEntry,
        state: str,
        frame_pixels: np.ndarray,
        offset: int,
        plan: ValidationPlan,
        deferred: list,
    ) -> None:
        """Queue the displayed option string of a select box (14px text)."""
        advance = char_advance(14)
        cells = [
            CharCell(entry.rect.x + 6 + i * advance, entry.rect.y + 8, advance, 14, ch)
            for i, ch in enumerate(state)
            if ch != " "
        ]
        cell_range = plan.add_cells(
            frame_pixels, cells, offset_x=0, offset_y=offset, background=252.0
        )

        def emit(result, text_verdicts, _image_verdicts, entry=entry, cells=cells):
            for cell, verdict in zip(cells, text_verdicts[cell_range]):
                if not verdict:
                    result.ok = False
                    result.failures.append(
                        ElementFailure(
                            "select",
                            cell.rect.as_tuple(),
                            f"{entry.input_name}: option char {cell.char!r} mismatch",
                        )
                    )

        deferred.append(emit)

    def _observed_region(
        self, frame_pixels: np.ndarray, rect: Rect, offset: int, viewport: Rect
    ) -> np.ndarray | None:
        """Crop an element's region from the frame; None unless fully visible."""
        if not viewport.contains(rect):
            return None
        fy = rect.y - offset
        return frame_pixels[fy : fy + rect.h, rect.x : rect.x2]

    def _collect_text_input(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        tracked_inputs: dict,
        plan: ValidationPlan,
        deferred: list,
    ) -> None:
        """A free-text input must display exactly the tracked value."""
        if not viewport.contains(entry.rect):
            return
        value = str(tracked_inputs.get(entry.input_name, entry.initial_value))
        box = entry.rect
        advance = char_advance(entry.text_size)
        origin_x = box.x + 6  # INPUT_PAD_X
        origin_y = box.y + (box.h - entry.text_size) // 2
        cells = [
            CharCell(origin_x + i * advance, origin_y, advance, entry.text_size, ch)
            for i, ch in enumerate(value)
            if ch != " " and origin_x + (i + 1) * advance < box.x2
        ]
        cell_range = plan.add_cells(
            frame_pixels, cells, offset_x=0, offset_y=offset, background=252.0
        )
        # Beyond the value, the field must be empty (no extra content).
        # Plain pixel statistics — resolved at collect time.
        tail_clean = True
        tail_x = origin_x + len(value) * advance + 2
        if tail_x < box.x2 - 2:
            fy0 = box.y - offset + 2
            tail = frame_pixels[fy0 : box.y2 - offset - 2, tail_x : box.x2 - 2]
            if tail.size and float(np.mean(tail < 200.0)) > 0.005:
                tail_clean = False

        def emit(result, text_verdicts, _image_verdicts, entry=entry, cells=cells):
            for cell, verdict in zip(cells, text_verdicts[cell_range]):
                if not verdict:
                    result.ok = False
                    result.failures.append(
                        ElementFailure(
                            "input",
                            cell.rect.as_tuple(),
                            f"{entry.input_name}: displayed char != tracked {cell.char!r}",
                        )
                    )
            if not tail_clean:
                result.ok = False
                result.failures.append(
                    ElementFailure(
                        "input",
                        entry.rect.as_tuple(),
                        f"{entry.input_name}: unexpected content beyond tracked value",
                    )
                )

        deferred.append(emit)

    def _collect_scrollable(
        self,
        entry: ManifestEntry,
        frame_pixels: np.ndarray,
        offset: int,
        viewport: Rect,
        plan: ValidationPlan,
        deferred: list,
    ) -> None:
        """Nested-VSPEC validation of an independently scrollable element.

        The nested viewport search is structural (numpy) and resolves at
        collect time; the visible list rows' glyph tiles join the frame
        plan.  Nested tiles carry no alignment-retry hook — the nested
        offset search already aligned the interior raster.
        """
        nested = self.vspec.nested.get(entry.nested_id)
        if nested is None:
            deferred.append(_fixed_failure(entry.kind, entry.rect, "missing nested VSPEC"))
            return
        if not viewport.contains(entry.rect):
            return
        fy = entry.rect.y - offset
        interior = frame_pixels[fy + 1 : fy + entry.rect.h - 1, entry.rect.x + 1 : entry.rect.x2 - 1].copy()
        # List-selection shading is element state, not content: normalize it.
        selection_band = np.abs(interior - self.pof_style.list_selection_intensity) <= 6.0
        interior[selection_band] = 252.0

        expected = nested.expected
        pad_w = expected.shape[1] - interior.shape[1]
        if pad_w < 0:
            deferred.append(
                _fixed_failure(entry.kind, entry.rect, "observed wider than nested spec")
            )
            return
        # Align widths (border crop makes the interior 2px narrower).
        expected_view = expected[:, 1 : 1 + interior.shape[1]] if pad_w else expected
        match = best_vertical_offset(interior, expected_view, stride=2)
        if match.score < VIEWPORT_SCORE_FLOOR:
            deferred.append(
                _fixed_failure(
                    entry.kind, entry.rect, f"nested viewport unmatched (score={match.score:.2f})"
                )
            )
            return
        nested_viewport = Rect(0, match.offset, interior.shape[1], interior.shape[0])
        for sub in nested.entries:
            if sub.kind != "text" or not sub.rect.intersects(nested_viewport):
                continue
            cells = [c for c in sub.chars if nested_viewport.contains(c.rect)]
            adjusted = [
                CharCell(c.x - 1, c.y, c.w, c.h, c.char) for c in cells
            ]  # interior crop removed the 1px border column
            # Tiles cut from the offset-matched interior raster get no
            # alignment retry (retry=False), matching their provenance.
            cell_range = plan.add_cells(
                interior,
                adjusted,
                offset_x=0,
                offset_y=match.offset,
                background=252.0,
                retry=False,
            )

            def emit(result, text_verdicts, _image_verdicts, cells=adjusted, cell_range=cell_range):
                for cell, verdict in zip(cells, text_verdicts[cell_range]):
                    if not verdict:
                        result.ok = False
                        result.failures.append(
                            ElementFailure(
                                "scroll-text",
                                cell.rect.as_tuple(),
                                f"list row character {cell.char!r} mismatch",
                            )
                        )

            deferred.append(emit)

    def _validate_background(
        self, frame_pixels: np.ndarray, offset: int, viewport: Rect, result: DisplayResult
    ) -> None:
        """Regions without UI elements must match the background color."""
        mask = np.ones(frame_pixels.shape, dtype=bool)
        for entry in self.vspec.visible_entries(viewport):
            grown = entry.rect.expanded(8)
            y0 = max(grown.y - offset, 0)
            y1 = min(grown.y2 - offset, frame_pixels.shape[0])
            x0 = max(grown.x, 0)
            x1 = min(grown.x2, frame_pixels.shape[1])
            if y1 > y0 and x1 > x0:
                mask[y0:y1, x0:x1] = False
        if not mask.any():
            return
        deviation = np.abs(frame_pixels[mask] - self.vspec.background)
        bad_fraction = float(np.mean(deviation > 25.0))
        if bad_fraction > 0.002:
            result.ok = False
            result.failures.append(
                ElementFailure(
                    "background",
                    viewport.as_tuple(),
                    f"{bad_fraction * 100:.2f}% of background pixels off-color",
                )
            )


def _fixed_failure(kind: str, rect: Rect, reason: str):
    """A deferred emitter for a failure already decided at collect time.

    Structural checks resolve during collection but still emit through the
    deferred list, so failures keep manifest-entry order next to
    CNN-verdict failures.
    """

    def emit(result, _text_verdicts, _image_verdicts):
        result.ok = False
        result.failures.append(ElementFailure(kind, rect.as_tuple(), reason))

    return emit
