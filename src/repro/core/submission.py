"""Submission validation and request certification (paper §III-C3).

When the page submits, vWitness executes the VSPEC's validation function
with the inputs *it* observed and the page-constructed request.  Only if
the function succeeds — and the session recorded no violations — does
vWitness unseal its signing key and certify the request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import MeasuredState, SealedSigningKey, SealError
from repro.crypto.signing import CertifiedRequest, sign_request
from repro.vspec.serialize import vspec_digest
from repro.vspec.spec import VSpec
from repro.vspec.validation import ValidationError, run_validation


@dataclass(frozen=True)
class CertificationDecision:
    """vWitness's verdict on a submission."""

    certified: bool
    reason: str
    request: CertifiedRequest | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.certified


class SubmissionValidator:
    """Runs the validation function and signs accepted requests."""

    def __init__(
        self,
        sealed_key: SealedSigningKey,
        measured_state: MeasuredState,
        certificate,
    ) -> None:
        self.sealed_key = sealed_key
        self.measured_state = measured_state
        self.certificate = certificate

    def certify(
        self,
        vspec: VSpec,
        request_body: dict,
        observed_inputs: dict,
        violations: list,
        display_ok: bool,
    ) -> CertificationDecision:
        """Certify a request, or refuse with the failing condition."""
        if violations:
            first = violations[0]
            return CertificationDecision(
                False, f"interaction violations recorded (first: {first.rule}: {first.detail})"
            )
        if not display_ok:
            return CertificationDecision(False, "display validation failed during the session")
        try:
            run_validation(vspec, observed_inputs, request_body)
        except ValidationError as exc:
            return CertificationDecision(False, f"validation function failed: {exc}")
        try:
            private_key = self.sealed_key.unseal(self.measured_state)
        except SealError as exc:
            return CertificationDecision(False, f"key unsealing failed: {exc}")
        request = sign_request(private_key, request_body, vspec_digest(vspec), self.certificate)
        return CertificationDecision(True, "interaction integrity certified", request)
