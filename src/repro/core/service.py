"""Service-oriented witness API: one service, many concurrent sessions.

The paper's prototype witnesses one guest at a time, and the original
``VWitness`` object mirrored that: heavyweight resources (trained CNN
verifiers, the sealed signing key, caches) were owned by a single
stateful session object.  Production traffic needs the inverse shape:

* :class:`WitnessService` — long-lived and thread-safe.  Loads/trains
  the text and image models exactly once (through the process-wide zoo
  registry), holds the sealed key, measured state and certificate, and
  owns one cross-session :class:`~repro.core.caches.DigestCache`.
* :class:`WitnessSession` — a cheap single-use handle, one per guest
  :class:`~repro.web.hypervisor.Machine`, with a context-manager
  lifecycle.  It runs the §III-B workflow (``begin_session`` /
  ``receive_hint`` / ``end_session``) against the service's shared
  resources while keeping all per-guest state private.
* :class:`WitnessConfig` — an immutable configuration record replacing
  the old 8-kwarg constructor; per-session overrides derive from it
  with :meth:`WitnessConfig.replace`.
* :class:`FrameOutcome` — the typed per-frame result delivered to the
  ``on_frame`` observability hook; ``on_violation`` and ``on_decision``
  fire as violations are recorded and submissions are certified.
* :class:`SessionRegistry` — tracks the live sessions of a service so
  one witness can concurrently cover N machines.

``repro.core.session.VWitness`` remains as a thin backward-compat shim
that wraps a dedicated single-machine service.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field, replace

from repro.core.caches import DifferentialDetector, DigestCache
from repro.core.display import DisplayResult, DisplayValidator
from repro.core.interaction import InteractionTracker, Violation
from repro.core.pof import check_pof_consistency, extract_pofs
from repro.core.sampler import ScreenshotSampler
from repro.core.submission import CertificationDecision, SubmissionValidator
from repro.core.timing import SessionTiming
from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.crypto.ca import CertificateAuthority
from repro.faults import FaultInjector, FaultPlan
from repro.nn.infer import INFERENCE_MODES
from repro.obs.spans import maybe_span
from repro.runtime.backpressure import POLICIES
from repro.runtime.errors import RuntimeFaultError
from repro.runtime.executor import EXECUTOR_MODES, ValidationExecutor
from repro.crypto.keys import MeasuredState, SealedSigningKey, generate_signing_key
from repro.vision.components import Rect
from repro.vspec.spec import VSpec
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF, POFStyle

#: Stride between auto-derived per-session sampler seeds (a prime far from
#: the small integers humans pin by hand, so derived seeds don't collide
#: with explicitly chosen ones).
_SEED_STRIDE = 7919

#: Components measured into the trusted stack at provisioning time.
TRUSTED_STACK = {
    "hypervisor": b"xen-4.17-analogue",
    "vwitness-core": b"repro.core-v1",
    "text-model": b"text-verifier-weights",
    "image-model": b"image-verifier-weights",
}


@dataclass(frozen=True)
class WitnessConfig:
    """Immutable witness configuration (replaces the 8-kwarg constructor).

    A service is built with one config; individual sessions may derive
    variations via :meth:`replace` (e.g. a different sampler seed per
    guest) without touching shared state.
    """

    text_model_variant: str = "base"
    #: Plan-level batching: with ``True`` each frame's collected
    #: ValidationPlan executes as one vectorized forward per model kind
    #: (the paper's GPU setup); with ``False`` every unit input is its own
    #: forward (the CPU setup).  Verdicts are identical either way.
    batched: bool = False
    caching: bool = True
    cache_entries: int = 100_000
    #: Upper bound on the per-forward batch in batched mode (bounds peak
    #: activation memory for large plans); ``None`` disables chunking.
    predict_chunk: int | None = 512
    sampler_seed: int = 0
    periodic_sampling: bool = False
    pof_style: POFStyle = DEFAULT_POF
    check_background: bool = True
    subject: str = "client-1"
    #: Plan execution strategy.  ``"inline"`` runs each session's plans on
    #: the calling thread (the original path); ``"shared"`` routes model
    #: forwards through the service's cross-session
    #: :class:`~repro.runtime.executor.ValidationExecutor`, coalescing
    #: concurrent sessions' rounds into global micro-batches.  Shared
    #: execution presupposes plan batching (``batched=True``).
    executor: str = "inline"
    #: Shared-runtime knobs (ignored under ``executor="inline"``): flush a
    #: micro-batch at this many pending units or after this deadline,
    #: whichever first; bound admitted-but-unfinished units (``None`` =
    #: unbounded) with ``"block"`` or ``"shed"`` overload handling; size
    #: of the worker pool that overlaps text/image plan execution.
    runtime_max_batch_units: int = 256
    runtime_flush_deadline_ms: float = 2.0
    runtime_max_inflight_units: int | None = 8192
    runtime_admission: str = "block"
    runtime_workers: int = 8
    #: Which executable runs the model forwards (orthogonal to ``batched``
    #: and ``executor``, which decide how unit inputs are *grouped*):
    #: ``"frozen"`` (default) compiles each trained matcher once into its
    #: fused, allocation-free float32 twin (:mod:`repro.nn.infer`);
    #: ``"training"`` keeps the layer-by-layer ``Sequential`` forward.
    #: Decisions are identical either way — the knob exists so every
    #: benchmark can A/B the inference engine.
    inference: str = "frozen"
    #: Frame-span tracing (:mod:`repro.obs`).  Off by default: disabled
    #: tracing costs one ``is None`` test per span site and zero
    #: allocations.  Enabled, every sampled frame is timed stage by stage
    #: (histograms surfaced via ``WitnessService.telemetry()``) and
    #: recorded into the service's flight-recorder ring.  Tracing never
    #: changes a verdict — soak fingerprints are bit-identical on vs off.
    tracing: bool = False
    #: Flight-recorder ring capacity in frames (only meaningful with
    #: ``tracing=True``).
    flight_frames: int = 64
    #: Directory for flight-recorder JSON artifacts.  When set (and
    #: tracing), every violation and every rejected certification
    #: decision dumps the last-N-frames evidence there; ``None`` keeps
    #: the ring query-only (``WitnessService.flight_recorder``).
    flight_dir: str | None = None
    #: Deterministic fault injection (:mod:`repro.faults`).  ``None`` (the
    #: default) keeps every seam a zero-cost ``is None`` test; a
    #: :class:`~repro.faults.FaultPlan` arms the service-wide injector.
    #: Faults never change what *can* certify — they exercise the
    #: fail-closed ladder: recoverable faults degrade and retry,
    #: unrecoverable ones become violations and refusals.
    faults: FaultPlan | None = None
    #: Unrecoverable runtime faults a session tolerates (each already a
    #: refusal-causing violation) before it is quarantined: sampling
    #: stops and the session can only refuse to certify.
    max_session_faults: int = 3
    #: How long a shared-runtime submission waits on its flush before the
    #: executor degrades it to an inline forward.
    runtime_submit_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.predict_chunk is not None and self.predict_chunk < 1:
            raise ValueError(
                f"predict_chunk must be None (unchunked) or >= 1, got {self.predict_chunk}"
            )
        if self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES}, got {self.executor!r}"
            )
        if self.executor == "shared" and not self.batched:
            raise ValueError(
                "executor='shared' coalesces vectorized rounds across sessions and "
                "therefore requires batched=True"
            )
        if self.runtime_max_batch_units < 1:
            raise ValueError(
                f"runtime_max_batch_units must be >= 1, got {self.runtime_max_batch_units}"
            )
        if self.runtime_flush_deadline_ms < 0:
            raise ValueError(
                f"runtime_flush_deadline_ms must be >= 0, got {self.runtime_flush_deadline_ms}"
            )
        if self.runtime_max_inflight_units is not None and self.runtime_max_inflight_units < 1:
            raise ValueError(
                "runtime_max_inflight_units must be None (unbounded) or >= 1, "
                f"got {self.runtime_max_inflight_units}"
            )
        if self.runtime_admission not in POLICIES:
            raise ValueError(
                f"runtime_admission must be one of {POLICIES}, got {self.runtime_admission!r}"
            )
        if self.runtime_workers < 1:
            raise ValueError(f"runtime_workers must be >= 1, got {self.runtime_workers}")
        if self.inference not in INFERENCE_MODES:
            raise ValueError(
                f"inference must be one of {INFERENCE_MODES}, got {self.inference!r}"
            )
        if self.flight_frames < 1:
            raise ValueError(f"flight_frames must be >= 1, got {self.flight_frames}")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be None or a repro.faults.FaultPlan, got {type(self.faults).__name__}"
            )
        if self.max_session_faults < 1:
            raise ValueError(
                f"max_session_faults must be >= 1, got {self.max_session_faults}"
            )
        if self.runtime_submit_timeout_s <= 0:
            raise ValueError(
                f"runtime_submit_timeout_s must be positive, got {self.runtime_submit_timeout_s}"
            )

    def replace(self, **overrides) -> "WitnessConfig":
        """A copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class FrameOutcome:
    """Typed result of one sampled-and-validated frame (``on_frame`` hook)."""

    index: int
    sampled_at_ms: float
    elapsed_seconds: float
    ok: bool
    offset_y: int
    skipped_unchanged: bool
    failures: tuple
    new_violations: tuple
    # Plan-size statistics: unit inputs collected and model forwards run
    # for this frame (zero for skipped-unchanged frames).  In batched mode
    # forwards stay O(1) per model kind regardless of plan size.
    plan_text_units: int = 0
    plan_image_pairs: int = 0
    text_retry_rounds: int = 0
    text_forwards: int = 0
    image_forwards: int = 0

    @property
    def clean(self) -> bool:
        return self.ok and not self.new_violations

    @property
    def plan_units(self) -> int:
        """Total unit inputs the frame's validation plan collected."""
        return self.plan_text_units + self.plan_image_pairs

    @property
    def forwards(self) -> int:
        """Total model forward passes the frame's plan executed."""
        return self.text_forwards + self.image_forwards


@dataclass
class SessionReport:
    """Everything a session recorded (exposed for tests and benches)."""

    display_ok: bool = True
    frame_results: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    timing: SessionTiming = field(default_factory=SessionTiming)
    frames_sampled: int = 0
    frames_skipped: int = 0
    text_invocations: int = 0
    image_invocations: int = 0
    text_forwards: int = 0
    image_forwards: int = 0
    outcomes: list = field(default_factory=list)
    # Fault-injection bookkeeping (sampler seams; zero without a plan).
    # Not part of the session fingerprint: recoverable faults must leave
    # verdicts bit-identical, and these count the recoveries themselves.
    frames_dropped: int = 0
    frames_delayed: int = 0
    frames_corrupted: int = 0

    @property
    def all_failures(self) -> list:
        return [f for r in self.frame_results for f in r.failures]

    @property
    def plan_text_units(self) -> int:
        """Unit inputs collected by every frame's text plan, summed."""
        return sum(r.plan_text_units for r in self.frame_results)

    @property
    def plan_image_pairs(self) -> int:
        """Unit inputs collected by every frame's image plan, summed."""
        return sum(r.plan_image_pairs for r in self.frame_results)


class SessionRegistry:
    """Thread-safe book-keeping of a service's live sessions.

    The lifetime statistics (``total_opened``, ``peak_active``) are
    written under the registry lock and must be read under it too — bare
    attributes let readers observe a torn pair (a ``total_opened`` that
    already counts a session whose ``peak_active`` bump it misses), so
    they are exposed as locked properties, and :meth:`stats` returns one
    mutually consistent snapshot of all three numbers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict = {}
        self._ids = itertools.count(1)
        self._total_opened = 0
        self._peak_active = 0

    def register(self, session: "WitnessSession") -> int:
        with self._lock:
            session_id = next(self._ids)
            self._sessions[session_id] = session
            self._total_opened += 1
            self._peak_active = max(self._peak_active, len(self._sessions))
            return session_id

    def unregister(self, session: "WitnessSession") -> None:
        with self._lock:
            self._sessions.pop(session.id, None)

    def active(self) -> list:
        """The currently registered (not yet closed) sessions."""
        with self._lock:
            return list(self._sessions.values())

    def stats(self) -> dict:
        """One consistent snapshot of the registry's counters."""
        with self._lock:
            return {
                "active": len(self._sessions),
                "total_opened": self._total_opened,
                "peak_active": self._peak_active,
            }

    @property
    def total_opened(self) -> int:
        with self._lock:
            return self._total_opened

    @property
    def peak_active(self) -> int:
        with self._lock:
            return self._peak_active

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __len__(self) -> int:
        return self.active_count

    def __iter__(self):
        return iter(self.active())


class WitnessService:
    """A long-lived witness serving many guest machines concurrently.

    Owns everything expensive exactly once — trained models, the sealed
    signing key and certificate, the cross-session digest cache — and
    vends :class:`WitnessSession` handles via :meth:`open_session`.

    Provisioning (§III-A): pass a ``ca`` and the service generates
    ``K_pri``, seals it to the measured trusted stack and has the CA
    certify ``K_pub``.  Alternatively pass pre-provisioned
    ``sealed_key``/``measured_state``/``certificate`` (the compat path).
    """

    def __init__(
        self,
        ca: CertificateAuthority | None = None,
        config: WitnessConfig | None = None,
        *,
        text_model=None,
        image_model=None,
        sealed_key: SealedSigningKey | None = None,
        measured_state: MeasuredState | None = None,
        certificate=None,
        subject: str | None = None,
    ) -> None:
        self.config = config or WitnessConfig()
        self.ca = ca

        if text_model is None or image_model is None:
            # The zoo memoizes per process: a second service never retrains.
            from repro.nn.zoo import get_image_model, get_text_model

            text_model = text_model or get_text_model(self.config.text_model_variant)
            image_model = image_model or get_image_model()
        self.text_model = text_model
        self.image_model = image_model

        if measured_state is None:
            measured_state = MeasuredState.measure(dict(TRUSTED_STACK))
        if sealed_key is None or certificate is None:
            if ca is None:
                raise ValueError(
                    "provisioning a WitnessService needs either a CertificateAuthority "
                    "or a pre-provisioned sealed_key + certificate"
                )
            key = generate_signing_key()
            sealed_key = SealedSigningKey(key, measured_state)
            certificate = ca.issue(subject or self.config.subject, key.public_key())
        self.measured_state = measured_state
        self.sealed_key = sealed_key
        self.certificate = certificate
        self.submission = SubmissionValidator(sealed_key, measured_state, certificate)

        self.shared_cache: DigestCache | None = (
            DigestCache(self.config.cache_entries) if self.config.caching else None
        )
        #: The service-wide deterministic fault injector; ``None`` unless
        #: the config carries a :class:`~repro.faults.FaultPlan`.  One
        #: injector spans every session, so ``at_calls`` schedules count
        #: service-global seam calls.
        self.fault_injector: FaultInjector | None = (
            FaultInjector(self.config.faults) if self.config.faults is not None else None
        )
        if self.fault_injector is not None and self.shared_cache is not None:
            self.shared_cache.fault_hook = self.fault_injector.cache_hook
        self._quarantine_lock = threading.Lock()
        self._quarantined_sessions = 0
        self.registry = SessionRegistry()
        self._hooks: dict = {"frame": [], "violation": [], "decision": []}
        # The cross-session validation runtime: created lazily on the
        # first session that asks for shared execution (inline-only
        # services never pay for its threads).
        self._runtime: ValidationExecutor | None = None
        self._runtime_lock = threading.Lock()
        # Observability state (repro.obs): span histograms and the flight
        # ring are created lazily by the first traced session, so
        # tracing-off services carry two None attributes and nothing else.
        self._obs_lock = threading.Lock()
        self._span_metrics = None
        self._flight = None
        self._flight_seq = itertools.count(1)

    # -- observability hooks ----------------------------------------------

    def on_frame(self, callback):
        """Register ``callback(session, outcome)`` for every sampled frame."""
        self._hooks["frame"].append(callback)
        return callback

    def on_violation(self, callback):
        """Register ``callback(session, violation)``, fired for every
        violation a frame records (after that frame's bookkeeping)."""
        self._hooks["violation"].append(callback)
        return callback

    def on_decision(self, callback):
        """Register ``callback(session, decision)`` fired at certification."""
        self._hooks["decision"].append(callback)
        return callback

    # -- session vending ---------------------------------------------------

    def open_session(
        self,
        machine: Machine,
        *,
        config: WitnessConfig | None = None,
        sampler_seed: int | None = None,
    ) -> "WitnessSession":
        """Vend a session handle for one guest machine.

        ``config`` overrides the service config for this session only;
        ``sampler_seed`` overrides just the sampling seed.  When the
        caller pins neither (service defaults), each session gets a
        distinct derived seed (base + a large-stride session counter, so
        it also stays clear of typical hand-pinned values) and therefore
        a distinct sampling schedule.  A seed pinned via either argument
        is honored verbatim.  Note the simulation's seeded RNG is
        deterministic by design — schedule *unpredictability* against a
        real co-located attacker is an OS-entropy concern, out of scope
        here.
        """
        cfg = config or self.config
        session = WitnessSession(self, machine, cfg, sampler_seed=sampler_seed)
        session.id = self.registry.register(session)
        if sampler_seed is None and config is None:
            session.sampler_seed = cfg.sampler_seed + (session.id - 1) * _SEED_STRIDE
        return session

    def session_cache_views(self, cfg: WitnessConfig):
        """(text, image) cache views for one session under ``cfg``.

        Both views sit over the *same* shared store but in disjoint
        namespaces, so a text-tile digest can never satisfy an
        image-region lookup (and vice versa).
        """
        if not cfg.caching:
            return None, None
        base = self.shared_cache
        if base is None:
            base = DigestCache(cfg.cache_entries)
            if self.fault_injector is not None:
                base.fault_hook = self.fault_injector.cache_hook
        return base.scoped("text"), base.scoped("image")

    @property
    def active_sessions(self) -> int:
        return self.registry.active_count

    # -- validation runtime --------------------------------------------------

    def session_runtime(self, cfg: WitnessConfig) -> ValidationExecutor | None:
        """The shared executor for a session under ``cfg`` (or ``None``).

        All shared-mode sessions of a service coalesce in *one* runtime;
        its knobs come from the first config that asks for it (normally
        the service config).
        """
        if cfg.executor != "shared":
            return None
        with self._runtime_lock:
            if self._runtime is None or self._runtime.closed:
                self._runtime = ValidationExecutor(
                    self.text_model,
                    self.image_model,
                    max_batch_units=cfg.runtime_max_batch_units,
                    flush_deadline_ms=cfg.runtime_flush_deadline_ms,
                    chunk_size=cfg.predict_chunk,
                    max_inflight_units=cfg.runtime_max_inflight_units,
                    admission=cfg.runtime_admission,
                    workers=cfg.runtime_workers,
                    submit_timeout=cfg.runtime_submit_timeout_s,
                    inference=cfg.inference,
                    faults=self.fault_injector,
                )
            return self._runtime

    @property
    def runtime(self) -> ValidationExecutor | None:
        """The shared executor, if any session has instantiated it."""
        return self._runtime

    # -- health & degradation ------------------------------------------------

    def _note_quarantine(self) -> None:
        with self._quarantine_lock:
            self._quarantined_sessions += 1

    def health(self) -> dict:
        """The service's degradation-ladder state, one JSON-able dict.

        Merges the shared runtime's :class:`~repro.runtime.health.HealthTracker`
        snapshot (``{"state": "healthy"}`` for inline-only services) with
        session-quarantine accounting and the fault injector's arming
        state.  Quarantined sessions escalate an otherwise ``healthy``
        service to ``degraded`` — something unrecoverable happened, even
        if the runtime itself has moved on.
        """
        runtime = self._runtime
        snapshot = (
            runtime.health.snapshot() if runtime is not None else {"state": "healthy"}
        )
        with self._quarantine_lock:
            quarantined = self._quarantined_sessions
        snapshot["quarantined_sessions"] = quarantined
        if quarantined and snapshot["state"] == "healthy":
            snapshot["state"] = "degraded"
        snapshot["faults_armed"] = self.fault_injector is not None
        snapshot["faults_injected"] = (
            self.fault_injector.total_fired if self.fault_injector is not None else 0
        )
        return snapshot

    def runtime_stats(self) -> dict:
        """One observability snapshot: executor mode, sessions, runtime.

        ``sessions`` is the registry's consistent counter snapshot and
        ``cache`` the digest cache's accounting — both are merged
        regardless of executor mode, so an ``executor="inline"`` service
        (which never builds the shared runtime) still reports them.
        ``runtime`` holds the micro-batching metrics (counters, gauges,
        histograms — see :mod:`repro.runtime.metrics`) and is ``None``
        until a shared-mode session has run.
        """
        runtime = self._runtime
        cache = self.shared_cache
        return {
            "executor": self.config.executor,
            "inference": self.config.inference,
            "sessions": self.registry.stats(),
            "cache": cache.stats() if cache is not None else None,
            "cache_hit_rate": cache.hit_rate if cache is not None else None,
            "runtime": runtime.stats() if runtime is not None else None,
            "health": self.health(),
        }

    # -- observability (repro.obs) -----------------------------------------

    def session_tracer(self, cfg: WitnessConfig, session_id: int):
        """A :class:`~repro.obs.spans.SpanTracer` for one session under
        ``cfg``, or ``None`` when tracing is off (the zero-cost default).

        All traced sessions of a service share one span-metrics registry
        (percentiles aggregate service-wide) and one flight ring.
        """
        if not cfg.tracing:
            return None
        from repro.obs.flight import FlightRecorder
        from repro.obs.spans import SpanTracer
        from repro.runtime.metrics import RuntimeMetrics

        with self._obs_lock:
            if self._span_metrics is None:
                self._span_metrics = RuntimeMetrics()
            if self._flight is None:
                self._flight = FlightRecorder(cfg.flight_frames)
            return SpanTracer(
                session_id,
                self._span_metrics,
                recorder=self._flight,
                cache=self.shared_cache,
            )

    @property
    def span_metrics(self):
        """The shared span-histogram registry (None until a traced session)."""
        return self._span_metrics

    @property
    def flight_recorder(self):
        """The shared flight-recorder ring (None until a traced session)."""
        return self._flight

    def telemetry(self):
        """One :class:`~repro.obs.telemetry.TelemetrySnapshot` federating
        every stats island: sessions, cache, runtime, spans, flight,
        arenas, transport pools."""
        from repro.obs.telemetry import build_snapshot

        return build_snapshot(self)

    def dump_flight(self, reason: str, session: "WitnessSession | None" = None) -> str | None:
        """Write the flight ring to a JSON artifact under ``flight_dir``.

        Returns the path, or ``None`` when there is nothing to dump (no
        traced session yet) or no ``flight_dir`` configured.  Called
        automatically on violations and rejected decisions; callable
        directly for ad-hoc snapshots.
        """
        recorder = self._flight
        cfg = session.config if session is not None else self.config
        if recorder is None or not cfg.flight_dir:
            return None
        seq = next(self._flight_seq)
        sid = session.id if session is not None else 0
        path = os.path.join(cfg.flight_dir, f"flight-s{sid:03d}-{seq:04d}.json")
        return recorder.dump(path, reason=reason)

    def close(self) -> None:
        """Release the service's runtime threads.  Idempotent.

        Close a service after its sessions have ended: a still-open
        shared-mode session holds a reference to the closed executor and
        its next validation round will fail loudly rather than hang.  The
        closed executor is retained so :meth:`runtime_stats` keeps
        reporting its final counters; a later shared-mode session simply
        gets a fresh one.
        """
        with self._runtime_lock:
            runtime = self._runtime
        if runtime is not None:
            runtime.close()

    def __enter__(self) -> "WitnessService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _dispatch(self, kind: str, session: "WitnessSession", payload) -> None:
        # Flight-recorder artifacts fire before user hooks: the evidence
        # is on disk even if a hook raises.  The offending frame's trace
        # is already in the ring (finish_frame precedes dispatch).
        if kind == "violation":
            self.dump_flight(f"violation:{payload.rule}: {payload.detail}", session)
        elif kind == "decision" and not payload.certified:
            self.dump_flight(f"decision-rejected: {payload.reason}", session)
        for callback in self._hooks[kind]:
            callback(session, payload)
        for callback in session._hooks[kind]:
            callback(session, payload)


class WitnessSession:
    """One guest machine's witnessing lifecycle against a shared service.

    Single-use: ``open -> begin_session -> (receive_hint | frames) ->
    end_session -> closed``.  Usable as a context manager; leaving the
    ``with`` block tears the session down even if it was never certified.
    Not itself thread-safe — one session serves one guest — but any
    number of sessions may run concurrently against one service.
    """

    def __init__(
        self,
        service: WitnessService,
        machine: Machine,
        config: WitnessConfig,
        sampler_seed: int | None = None,
    ) -> None:
        self.service = service
        self.machine = machine
        self.config = config
        self.sampler_seed = config.sampler_seed if sampler_seed is None else sampler_seed
        self.id = 0  # assigned by the registry at open time
        self.vspec: VSpec | None = None
        self.report = SessionReport()
        self._hooks: dict = {"frame": [], "violation": [], "decision": []}
        self._state = "open"  # open -> witnessing -> ended | closed
        self._sampler: ScreenshotSampler | None = None
        self._display: DisplayValidator | None = None
        self._tracker: InteractionTracker | None = None
        self._text_verifier: TextVerifier | None = None
        self._image_verifier: ImageVerifier | None = None
        self._diff: DifferentialDetector | None = None
        self._tracer = None  # SpanTracer when config.tracing, else None
        self._last_sample_ms = 0.0
        self._last_offset = 0
        self._observing = False
        self._tracker_violations_seen = 0
        self._clean_start_pending = False
        # Unrecoverable-fault accounting (each one is already a
        # refusal-causing violation); at config.max_session_faults the
        # session is quarantined: sampling stops, certification refuses.
        self._fault_count = 0
        self._quarantined = False

    # -- hooks (per-session; service-level hooks also fire) ----------------

    def on_frame(self, callback):
        self._hooks["frame"].append(callback)
        return callback

    def on_violation(self, callback):
        self._hooks["violation"].append(callback)
        return callback

    def on_decision(self, callback):
        self._hooks["decision"].append(callback)
        return callback

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "WitnessSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- extension-facing API (the three APIs of §IV-A) --------------------

    def begin_session(self, vspec: VSpec) -> None:
        """Start witnessing (the ``vWitness_begin`` API)."""
        if self._state == "witnessing":
            raise RuntimeError("a session is already active")
        if self._state in ("ended", "closed"):
            raise RuntimeError(
                f"this session handle is {self._state}; open a new session from the service"
            )
        t0 = time.perf_counter()
        self._state = "witnessing"
        self.vspec = vspec
        self.report = SessionReport()
        text_cache, image_cache = self.service.session_cache_views(self.config)
        runtime = self.service.session_runtime(self.config)
        self._tracer = self.service.session_tracer(self.config, self.id)
        self._text_verifier = TextVerifier(
            self.service.text_model,
            batched=self.config.batched,
            cache=text_cache,
            chunk_size=self.config.predict_chunk,
            runtime=runtime,
            inference=self.config.inference,
            tracer=self._tracer,
            faults=self.service.fault_injector,
        )
        self._image_verifier = ImageVerifier(
            self.service.image_model,
            batched=self.config.batched,
            cache=image_cache,
            chunk_size=self.config.predict_chunk,
            runtime=runtime,
            inference=self.config.inference,
            tracer=self._tracer,
            faults=self.service.fault_injector,
        )
        self._display = DisplayValidator(
            vspec,
            self._text_verifier,
            self._image_verifier,
            pof_style=self.config.pof_style,
            check_background=self.config.check_background,
            runtime=runtime,
            tracer=self._tracer,
        )
        self._tracker = InteractionTracker(
            vspec, self.machine, self._text_verifier, self._image_verifier
        )
        self._tracker_violations_seen = 0
        self._diff = DifferentialDetector() if self.config.caching else None
        now = self.machine.clock.now()
        self._last_sample_ms = now
        self._sampler = ScreenshotSampler(
            now, seed=self.sampler_seed, periodic=self.config.periodic_sampling
        )
        if not self._observing:
            self.machine.clock.add_observer(self._on_clock)
            self._observing = True
        self.report.timing.t_init = time.perf_counter() - t0
        # Clean-start checks (§V-A): sample immediately — the viewport must
        # be at the top and all inputs in their initial (empty) state.  The
        # check runs inside the sampling pipeline so frame 0's FrameOutcome
        # already carries any clean-start violation when hooks see it.
        # Mandatory: API-driven, not schedule-driven, so the sampler
        # drop/delay fault seams (which model lost *scheduled* samples)
        # never skip it.
        self._clean_start_pending = True
        self._process_sample(now, mandatory=True)

    begin = begin_session

    def receive_hint(self, hint) -> None:
        """Queue an input hint and sample the display immediately.

        Hints arrive through an explicit API call, so vWitness reacts by
        taking an event-driven sample on top of the random schedule: the
        POF and the hinted value are verified against the display at the
        moment of the hint.  Extra samples only add observations — the
        random schedule (the TOCTOU defense) is unaffected.
        """
        if self._state != "witnessing" or self._tracker is None:
            raise RuntimeError("no active session")
        self._tracker.receive_hint(hint)
        # Mandatory: the hint-time sample may be the only observation of a
        # transient input state — the drop/delay seams model lost
        # *scheduled* samples, never the event-driven ones.
        self._process_sample(self.machine.clock.now(), mandatory=True)

    def end_session(self, request_body: dict) -> CertificationDecision:
        """Validate the submission and certify (the ``vWitness_end`` API)."""
        if self._state in ("ended", "closed"):
            raise RuntimeError(
                f"session already {self._state}: end_session may run once per session; "
                "open a new session from the service"
            )
        if self._state != "witnessing" or self.vspec is None:
            raise RuntimeError("no active session")
        # Final sample: whatever is on screen at submission time counts.
        # Mandatory: the sampler drop/delay seams must not skip it — a
        # tampered display cannot dodge certification by losing a frame.
        self._process_sample(self.machine.clock.now(), mandatory=True)
        t0 = time.perf_counter()
        decision = self.service.submission.certify(
            self.vspec,
            request_body,
            dict(self._tracker.tracked),
            self.report.violations + self._tracker.violations,
            self.report.display_ok,
        )
        self.report.timing.t_request = time.perf_counter() - t0
        self.service._dispatch("decision", self, decision)
        self.close(ended=True)
        return decision

    end = end_session

    def close(self, ended: bool = False) -> None:
        """Tear the session down: detach, unregister, drop per-guest state.

        Idempotent; called automatically by ``end_session`` and on
        ``with``-block exit.  Dropping the sampler/tracker/display
        references here is deliberate teardown hygiene: a closed handle
        must not keep stale verifier state (or the guest machine's frame
        pipeline) alive, and any further API call fails loudly.
        """
        if self._state == "closed" or (self._state == "ended" and not ended):
            return
        if self._observing:
            self.machine.clock.remove_observer(self._on_clock)
            self._observing = False
        self.service.registry.unregister(self)
        self._state = "ended" if ended else "closed"
        self.vspec = None
        self._sampler = None
        self._display = None
        self._tracker = None
        self._text_verifier = None
        self._image_verifier = None
        self._diff = None
        self._tracer = None

    @property
    def state(self) -> str:
        return self._state

    @property
    def active(self) -> bool:
        return self._state == "witnessing"

    @property
    def tracked_inputs(self) -> dict:
        if self._tracker is None:
            raise RuntimeError("no active session")
        return dict(self._tracker.tracked)

    # -- sampling ----------------------------------------------------------

    def _on_clock(self, now_ms: float) -> None:
        if self._sampler is None:
            return
        if self._sampler.due(now_ms):
            self._process_sample(now_ms)

    def _record_violation(self, violation: Violation) -> None:
        self.report.violations.append(violation)

    def _sync_tracker_violations(self) -> list:
        """Tracker violations recorded since the last sync."""
        if self._tracker is None:
            return []
        fresh = self._tracker.violations[self._tracker_violations_seen :]
        self._tracker_violations_seen = len(self._tracker.violations)
        return fresh

    def _note_fault(self) -> None:
        """Count an unrecoverable fault; quarantine at the config cap."""
        self._fault_count += 1
        if self._fault_count >= self.config.max_session_faults and not self._quarantined:
            self._quarantined = True
            self._record_violation(
                Violation(
                    "quarantine",
                    f"session quarantined after {self._fault_count} unrecoverable "
                    "runtime faults",
                )
            )
            self.service._note_quarantine()

    def _process_sample(self, now_ms: float, mandatory: bool = False) -> DisplayResult | None:
        """One sampled frame through the full validation pipeline.

        ``mandatory`` samples (the final submission-time one) ignore the
        sampler drop/delay fault seams: losing that frame must never let
        a tampered display certify.  A quarantined session processes no
        further frames — its report already carries the refusal-causing
        violations.
        """
        if self._quarantined:
            return None
        assert self._display is not None and self._tracker is not None
        faults = self.service.fault_injector
        if faults is not None and not mandatory:
            if faults.decide("sampler.drop"):
                # The sample never happens; the random schedule marches on.
                self.report.frames_dropped += 1
                self._sampler.schedule_next(now_ms)
                return None
            delay = faults.sampler_delay_ms()
            if delay > 0.0:
                self.report.frames_delayed += 1
                self._sampler.defer(now_ms, delay)
                return None
        t0 = time.perf_counter()
        violations_before = len(self.report.violations)
        if self._tracer is not None:
            self._tracer.begin_frame(self.report.frames_sampled)
        with maybe_span(self._tracer, "frame.sample"):
            frame = self.machine.sample_framebuffer()
        pixels = frame.pixels
        if faults is not None and faults.decide("sampler.bitflip"):
            # Corruption hits mandatory samples too: a corrupted display
            # must fail validation, never dodge it.
            pixels = faults.corrupt_frame(pixels)
            self.report.frames_corrupted += 1

        changed = self._diff.changed(pixels) if self._diff is not None else None
        nothing_changed = changed is not None and len(changed) == 0

        if nothing_changed and not self._tracker.has_pending:
            # Frame-cache fast path: identical frame, nothing pending.
            result = DisplayResult(ok=True, offset_y=self._last_offset, skipped_unchanged=True)
            self.report.frames_skipped += 1
        else:
            try:
                try:
                    with maybe_span(self._tracer, "frame.locate"):
                        offset, score = self._display.locate_viewport(
                            pixels, self._tracker.tracked
                        )
                except ValueError as exc:
                    # Viewport failure subsumes the clean-start offset check.
                    self._clean_start_pending = False
                    result = DisplayResult(ok=False)
                    self.report.display_ok = False
                    self._record_violation(Violation("viewport", str(exc)))
                    self._finish_frame(result, now_ms, t0, violations_before)
                    return result
                input_rects_frame = [
                    Rect(e.rect.x, e.rect.y - offset, e.rect.w, e.rect.h)
                    for e in self.vspec.input_entries()
                    if e.rect.y2 - offset > 0 and e.rect.y - offset < pixels.shape[0]
                ]
                pof_obs = extract_pofs(pixels, self.config.pof_style, input_rects=input_rects_frame)
                if pof_obs.present:
                    for violation in check_pof_consistency(pof_obs, input_rects_frame):
                        self._record_violation(Violation("pof-consistency", violation))
                self._tracker.on_frame(
                    pixels, offset, pof_obs, self._last_sample_ms, now_ms
                )
                result = self._display.validate(
                    pixels,
                    tracked_inputs=self._tracker.tracked,
                    pof_obs=pof_obs,
                    changed_rects=changed,
                    viewport=(offset, score),
                )
                self._last_offset = result.offset_y
                if not result.ok:
                    self.report.display_ok = False
            except RuntimeFaultError as exc:
                # The validation ladder ran out of rungs (injected or
                # organic).  Fail closed: the frame is invalid, the
                # session carries a refusal-causing violation, and
                # repeated faults quarantine it outright.
                result = DisplayResult(ok=False)
                self.report.display_ok = False
                self._record_violation(
                    Violation("fault", f"{type(exc).__name__}: {exc}")
                )
                self._note_fault()
                self._finish_frame(result, now_ms, t0, violations_before)
                return result

        if self._clean_start_pending:
            self._clean_start_pending = False
            if result.offset_y != 0:
                self.report.display_ok = False
                self._record_violation(
                    Violation(
                        "clean-start",
                        f"session began with viewport at offset {result.offset_y}",
                    )
                )

        self._finish_frame(result, now_ms, t0, violations_before)
        return result

    def _finish_frame(
        self, result: DisplayResult, now_ms: float, t0: float, violations_before: int
    ) -> None:
        elapsed = time.perf_counter() - t0
        self.report.frame_results.append(result)
        self.report.frames_sampled += 1
        self.report.timing.frame_times.append(elapsed)
        self.report.timing.frame_sample_times_ms.append(now_ms)
        if self._text_verifier is not None:
            self.report.text_invocations = self._text_verifier.invocations
            self.report.text_forwards = self._text_verifier.forwards
        if self._image_verifier is not None:
            self.report.image_invocations = self._image_verifier.invocations
            self.report.image_forwards = self._image_verifier.forwards
        self._last_sample_ms = now_ms
        if self._sampler is not None:
            self._sampler.schedule_next(now_ms)
        new_violations = tuple(self.report.violations[violations_before:])
        new_violations += tuple(self._sync_tracker_violations())
        outcome = FrameOutcome(
            index=self.report.frames_sampled - 1,
            sampled_at_ms=now_ms,
            elapsed_seconds=elapsed,
            ok=result.ok,
            offset_y=result.offset_y,
            skipped_unchanged=result.skipped_unchanged,
            failures=tuple(result.failures),
            new_violations=new_violations,
            plan_text_units=result.plan_text_units,
            plan_image_pairs=result.plan_image_pairs,
            text_retry_rounds=result.text_retry_rounds,
            text_forwards=result.text_forwards,
            image_forwards=result.image_forwards,
        )
        self.report.outcomes.append(outcome)
        # Seal the frame's trace BEFORE hook dispatch: a violation hook's
        # flight-recorder dump must already contain this frame.
        if self._tracer is not None:
            self._tracer.finish_frame(outcome)
        # All hook dispatch happens last, after the frame's report/sampler
        # bookkeeping is consistent: a raising hook propagates to whoever
        # drove the clock, but never leaves a half-recorded frame behind.
        for violation in new_violations:
            self.service._dispatch("violation", self, violation)
        self.service._dispatch("frame", self, outcome)
