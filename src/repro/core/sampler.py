"""Random-interval screenshot sampling (paper §III-C).

vWitness samples the frame buffer with a random delay uniform in
[0, 500ms] between consecutive samples — on average four samples per
second.  Randomness is the TOCTOU defense: an attacker cannot predict
sampling times, so evading them requires flipping the display faster than
the ~500ms human-perception threshold.
"""

from __future__ import annotations

import numpy as np

#: The paper's maximum inter-sample delay (ms).
MAX_DELAY_MS = 500.0


class ScreenshotSampler:
    """Generates the randomized sampling schedule against a virtual clock."""

    def __init__(self, start_ms: float, seed: int = 0, max_delay_ms: float = MAX_DELAY_MS, periodic: bool = False) -> None:
        if max_delay_ms <= 0:
            raise ValueError(f"max delay must be positive, got {max_delay_ms}")
        self._rng = np.random.default_rng(seed)
        self.max_delay_ms = max_delay_ms
        self.periodic = periodic
        self.next_sample_ms = start_ms + self._draw()

    def _draw(self) -> float:
        if self.periodic:
            # The ablation baseline: fixed half-max period (same mean rate).
            return self.max_delay_ms / 2.0
        return float(self._rng.uniform(0.0, self.max_delay_ms))

    def due(self, now_ms: float) -> bool:
        """Has the next sampling instant passed?"""
        return now_ms >= self.next_sample_ms

    def schedule_next(self, now_ms: float) -> float:
        """Advance the schedule after taking a sample; returns the next time."""
        self.next_sample_ms = now_ms + self._draw()
        return self.next_sample_ms

    def defer(self, now_ms: float, delay_ms: float) -> float:
        """Push the next sampling instant out by ``delay_ms`` without
        consuming a schedule draw (a *delayed* sample, not a rescheduled
        one — the fault-injection ``sampler.delay`` seam).  Never moves
        the schedule earlier."""
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        self.next_sample_ms = max(self.next_sample_ms, now_ms + delay_ms)
        return self.next_sample_ms

    @property
    def mean_period_ms(self) -> float:
        return self.max_delay_ms / 2.0
