"""Interaction interpretation (paper §III-C2).

vWitness builds an independent record of the user's inputs from what it
*sees*: the untrusted extension hints positions and values, and vWitness
accepts an input update only when

* the hinted field is one of the VSPEC's declared inputs and the hint's
  position falls inside the expected bounding rectangle,
* the field is inside the current viewport (out-of-viewport updates are
  ignored),
* hardware I/O occurred in the sampling window (**user presence** — UI
  changes without interrupts are malware-forged),
* a POF is present on that field (**user attention** — the reflective-
  validation assumption only covers the focused field), and
* the hinted value is actually displayed in the field, verified by the
  text verifier (or a state appearance for visual inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pof import POFObservation
from repro.core.verifiers import ImageVerifier, TextVerifier, structural_match
from repro.raster.text import char_advance
from repro.vision.components import Rect
from repro.vspec.spec import CharCell, ManifestEntry, VSpec


@dataclass(frozen=True)
class Violation:
    """One rejected interaction event (with the rule that rejected it)."""

    rule: str
    detail: str


@dataclass
class FrameInteraction:
    """Per-frame interaction outcome."""

    accepted: dict = field(default_factory=dict)
    ignored: list = field(default_factory=list)
    violations: list = field(default_factory=list)


class InteractionTracker:
    """Maintains vWitness's independent record of user inputs."""

    def __init__(
        self,
        vspec: VSpec,
        machine,
        text_verifier: TextVerifier,
        image_verifier: ImageVerifier,
    ) -> None:
        self.vspec = vspec
        self.machine = machine
        self.text_verifier = text_verifier
        self.image_verifier = image_verifier
        self.tracked: dict = {
            entry.input_name: entry.initial_value for entry in vspec.input_entries()
        }
        self._pending: list = []
        self.violations: list = []
        # Samples elapsed since a POF was last seen on each field.  A hint
        # may be processed one or two samples after the user moved focus
        # (vWitness samples asynchronously), so "user attention" accepts a
        # POF observed within the last POF_MAX_AGE samples.  The residual
        # window is bounded by the sampler period and still requires the
        # hinted value to be displayed and hardware I/O to be present.
        self._pof_age: dict = {}

    #: Maximum sample-age of a POF for the user-attention rule.
    POF_MAX_AGE = 2

    # -- hint intake -------------------------------------------------------

    def receive_hint(self, hint) -> None:
        """Queue an extension hint for verification at the next sample."""
        self._pending.append(hint)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    # -- per-frame processing ----------------------------------------------

    def on_frame(
        self,
        frame_pixels: np.ndarray,
        offset_y: int,
        pof_obs: POFObservation,
        window_start: float,
        window_end: float,
    ) -> FrameInteraction:
        """Verify pending hints against the sampled frame."""
        outcome = FrameInteraction()
        pending, self._pending = self._pending, []

        # Only the last hint per field matters: intermediate values were
        # superseded before vWitness sampled (continuous editing).
        latest: dict = {}
        for hint in pending:
            latest[hint.input_name] = hint

        frame_h = frame_pixels.shape[0]
        viewport = Rect(0, offset_y, self.vspec.width, frame_h)

        # Refresh per-field POF ages from this frame's observation.
        for entry in self.vspec.input_entries():
            if self._pof_on_field(pof_obs, entry, offset_y):
                self._pof_age[entry.input_name] = 0
            elif entry.input_name in self._pof_age:
                self._pof_age[entry.input_name] += 1

        for name, hint in latest.items():
            try:
                entry = self.vspec.entry_for_input(name)
            except KeyError:
                outcome.violations.append(
                    Violation("unknown-field", f"hint for undeclared input {name!r}")
                )
                continue

            hint_rect = Rect(*hint.rect)
            if not hint_rect.expanded(8).contains(entry.rect) and not entry.rect.expanded(8).contains(hint_rect):
                outcome.violations.append(
                    Violation(
                        "position",
                        f"hint rect {hint.rect} does not correspond to expected field "
                        f"{entry.rect.as_tuple()} for {name!r}",
                    )
                )
                continue

            if not entry.rect.intersects(viewport):
                outcome.ignored.append(name)  # out-of-viewport: ignored
                continue

            io_events = self.machine.io_events_between(window_start, window_end)
            if not io_events:
                outcome.violations.append(
                    Violation(
                        "user-presence",
                        f"input update on {name!r} with no hardware I/O in the window",
                    )
                )
                continue

            if self._pof_age.get(name, self.POF_MAX_AGE + 1) > self.POF_MAX_AGE:
                outcome.violations.append(
                    Violation("user-attention", f"input update on {name!r} without a recent POF")
                )
                continue

            if not self._displayed(entry, str(hint.value), frame_pixels, offset_y):
                outcome.violations.append(
                    Violation(
                        "display",
                        f"hinted value {hint.value!r} for {name!r} is not what the display shows",
                    )
                )
                continue

            self.tracked[name] = str(hint.value)
            outcome.accepted[name] = str(hint.value)

        self.violations.extend(outcome.violations)
        return outcome

    # -- checks ------------------------------------------------------------------

    def _pof_on_field(self, pof_obs: POFObservation, entry: ManifestEntry, offset_y: int) -> bool:
        """Does any POF cue sit on this field (frame coordinates)?"""
        field_rect = Rect(entry.rect.x, entry.rect.y - offset_y, entry.rect.w, entry.rect.h)
        grown = field_rect.expanded(8)
        cues = pof_obs.outlines + pof_obs.carets + pof_obs.highlights
        return any(grown.intersects(cue) for cue in cues)

    def _displayed(
        self, entry: ManifestEntry, value: str, frame_pixels: np.ndarray, offset_y: int
    ) -> bool:
        """Is the hinted value what the display actually shows?"""
        if entry.kind == "input":
            advance = char_advance(entry.text_size)
            origin_x = entry.rect.x + 6
            origin_y = entry.rect.y + (entry.rect.h - entry.text_size) // 2
            cells = [
                CharCell(origin_x + i * advance, origin_y, advance, entry.text_size, ch)
                for i, ch in enumerate(value)
                if ch != " " and origin_x + (i + 1) * advance < entry.rect.x2
            ]
            verdicts = self.text_verifier.verify_cells(
                frame_pixels, cells, offset_x=0, offset_y=offset_y, background=252.0
            )
            return bool(np.all(verdicts))
        if entry.kind in ("checkbox", "radio", "select"):
            if value not in entry.state_appearances:
                return False
            fy = entry.rect.y - offset_y
            if fy < 0 or fy + entry.rect.h > frame_pixels.shape[0]:
                return False
            observed = frame_pixels[fy : fy + entry.rect.h, entry.rect.x : entry.rect.x2]
            return structural_match(observed, entry.state_appearances[value])
        if entry.kind in ("scroll-v", "scroll-h"):
            # The display validator checks list content; the selected item
            # must be one of the list's legal values.
            nested = self.vspec.nested.get(entry.nested_id)
            if nested is None:
                return False
            legal = {"".join(c.char for c in sub.chars) for sub in nested.entries}
            return value.replace(" ", "") in legal or value == entry.initial_value
        return False
