"""vWitness core: the trusted witness component (paper §III-§IV).

The pipeline, per sampled frame:

1. :mod:`repro.core.sampler` — random-interval frame sampling (TOCTOU
   defense).
2. :mod:`repro.core.pof` — point-of-focus extraction from pixels and the
   three consistency rules.
3. :mod:`repro.core.display` — viewport detection and element validation
   against the VSPEC using the CNN verifiers
   (:mod:`repro.core.verifiers`), with differential detection and caching
   (:mod:`repro.core.caches`).
4. :mod:`repro.core.interaction` — hint verification, user presence and
   attention checks, tracked-input state.
5. :mod:`repro.core.submission` — the VSPEC validation function and
   request certification under the sealed key.

:class:`repro.core.service.WitnessService` owns the heavyweight resources
(models, sealed key, shared caches) and vends per-guest
:class:`repro.core.service.WitnessSession` handles that wire these
together behind the three extension APIs;
:class:`repro.core.session.VWitness` remains as the single-session compat
shim.  :mod:`repro.core.timing` models the request delay
``L = T(init) + sum T(frame_i) + T(request) - T(session)`` of §VI-B.
"""

from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.core.pof import POFObservation, check_pof_consistency, extract_pofs
from repro.core.caches import DifferentialDetector, DigestCache
from repro.core.sampler import ScreenshotSampler
from repro.core.display import DisplayResult, DisplayValidator, ElementFailure
from repro.core.interaction import InteractionTracker, Violation
from repro.core.submission import CertificationDecision, SubmissionValidator
from repro.core.service import (
    FrameOutcome,
    SessionRegistry,
    SessionReport,
    WitnessConfig,
    WitnessService,
    WitnessSession,
)
from repro.core.session import VWitness, install_vwitness
from repro.core.timing import SessionTiming, cutoff_session_length, request_delay

__all__ = [
    "WitnessService",
    "WitnessSession",
    "WitnessConfig",
    "FrameOutcome",
    "SessionRegistry",
    "install_vwitness",
    "TextVerifier",
    "ImageVerifier",
    "POFObservation",
    "extract_pofs",
    "check_pof_consistency",
    "DigestCache",
    "DifferentialDetector",
    "ScreenshotSampler",
    "DisplayValidator",
    "DisplayResult",
    "ElementFailure",
    "InteractionTracker",
    "Violation",
    "SubmissionValidator",
    "CertificationDecision",
    "VWitness",
    "SessionReport",
    "SessionTiming",
    "request_delay",
    "cutoff_session_length",
]
