"""CNN verifier wrappers: unit-input extraction, caching, batching.

The *text verifier* consumes one rendered character tile plus the expected
character; the *image verifier* consumes a 32x32 observed/expected region
pair (paper Table II).  Both support:

* **sequential** mode — one model forward per unit input (the paper's
  CPU setup), and
* **batched** mode — all unit inputs of a call in one vectorized forward
  (the GPU-accelerated setup; batching is where the speedup comes from).

Each wrapper counts model invocations (the unit of Table VI) and caches
verdicts keyed by a digest of the unit input (paper §IV-A Caching).
"""

from __future__ import annotations

import numpy as np

from repro.nn.data import CHAR_TO_INDEX, collapse_char
from repro.nn.model import MatcherModel
from repro.nn.tensorops import one_hot
from repro.vision.hashing import region_digest
from repro.vision.image import Image
from repro.vision.ops import resize_bilinear
from repro.vspec.spec import CharCell

#: Model input side length.
TILE = 32

#: NCC floor for structural (non-CNN) region matching of UI chrome.
STRUCTURAL_NCC_FLOOR = 0.80


#: Maximum mean absolute residual (intensity levels) after affine
#: intensity alignment for structural matching.
STRUCTURAL_MAD_CEILING = 10.0


def structural_match(
    observed: np.ndarray,
    expected: np.ndarray,
    threshold: float = STRUCTURAL_NCC_FLOOR,
    mad_ceiling: float = STRUCTURAL_MAD_CEILING,
) -> bool:
    """Match UI chrome regions (buttons, widget states) structurally.

    The paper encodes visual input states as "a well-defined appearance";
    matching them needs tolerance to rendering-stack intensity/gamma
    shifts but not to content changes.  Two complementary criteria:

    * zero-normalized cross-correlation >= ``threshold`` — affine-
      intensity-invariant structure agreement, and
    * mean absolute residual after least-squares affine intensity
      alignment <= ``mad_ceiling`` — catches *localized* content changes
      (a checkmark appearing in a mostly-border-dominated widget) that
      barely move a global correlation score.

    The CNN image model stays reserved for content images (icons, photos,
    screen regions), its training domain.
    """
    from repro.vision.match import normalized_cross_correlation

    observed = np.asarray(observed, dtype=float)
    expected = np.asarray(expected, dtype=float)
    if observed.shape != expected.shape:
        return False
    if normalized_cross_correlation(observed, expected) < threshold:
        return False
    obs_std = observed.std()
    if obs_std < 1e-9:
        aligned = np.full_like(observed, expected.mean())
    else:
        aligned = (observed - observed.mean()) * (expected.std() / obs_std) + expected.mean()
    return float(np.mean(np.abs(aligned - expected))) <= mad_ceiling


def glyph_tile_from_frame(frame_pixels: np.ndarray, cell: CharCell, offset_x: int, offset_y: int, background: float = 255.0) -> np.ndarray:
    """Extract the square glyph region for a manifest character cell.

    Mirrors :func:`repro.raster.text.render_text_line` geometry: glyph
    tiles are squares of side ``cell.h`` centred in the advance-wide cell.
    ``offset_*`` translate page coordinates into frame coordinates (the
    viewport scroll).  Returns a 32x32 float tile.
    """
    size = cell.h
    advance = cell.w
    if advance >= size:
        x0 = cell.x + (advance - size) // 2
        pad_l = 0
    else:
        # The renderer cropped the glyph tile horizontally; reconstruct the
        # square by padding with background.
        x0 = cell.x
        pad_l = (size - advance) // 2
    fy = cell.y - offset_y
    fx = x0 - offset_x
    frame = Image(frame_pixels)
    if pad_l:
        inner = frame.crop_clipped(fx, fy, advance, size, fill=background)
        square = np.full((size, size), background)
        square[:, pad_l : pad_l + advance] = inner.pixels
    else:
        square = frame.crop_clipped(fx, fy, size, size, fill=background).pixels
    if size != TILE:
        square = resize_bilinear(square, TILE, TILE)
    return square


def split_region_into_tiles(region: np.ndarray, background: float = 255.0) -> list:
    """Split a region into 32x32 tiles (edge tiles padded with background).

    Returns ``(tile, (row, col))`` pairs; regions smaller than one tile
    yield a single padded tile.  This is the unit-input decomposition the
    image verifier is invoked on (paper: "a 32-by-32 sub-region").
    """
    h, w = region.shape
    tiles = []
    rows = max(1, (h + TILE - 1) // TILE)
    cols = max(1, (w + TILE - 1) // TILE)
    for r in range(rows):
        for c in range(cols):
            tile = np.full((TILE, TILE), background)
            y0, x0 = r * TILE, c * TILE
            y1, x1 = min(y0 + TILE, h), min(x0 + TILE, w)
            if y1 > y0 and x1 > x0:
                tile[: y1 - y0, : x1 - x0] = region[y0:y1, x0:x1]
            tiles.append((tile, (r, c)))
    return tiles


class TextVerifier:
    """Text model wrapper with caching, batching and invocation counting."""

    def __init__(self, model: MatcherModel, batched: bool = False, cache=None) -> None:
        self.model = model
        self.batched = batched
        self.cache = cache
        self.invocations = 0

    def reset_counters(self) -> None:
        self.invocations = 0

    def _expected_onehot(self, chars: list) -> np.ndarray:
        indices = [CHAR_TO_INDEX[collapse_char(c)] for c in chars]
        return one_hot(indices, len(CHAR_TO_INDEX)).astype(np.float32)

    def verify_tiles(self, tiles: list, chars: list) -> np.ndarray:
        """Match verdicts for (tile, expected char) pairs."""
        if len(tiles) != len(chars):
            raise ValueError(f"tiles/chars misaligned: {len(tiles)} vs {len(chars)}")
        if not tiles:
            return np.zeros(0, dtype=bool)
        results = np.zeros(len(tiles), dtype=bool)
        pending_idx = []
        keys = []
        for i, (tile, char) in enumerate(zip(tiles, chars)):
            key = None
            if self.cache is not None:
                key = f"text:{region_digest(tile)}:{collapse_char(char)}"
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending_idx.append(i)
            keys.append(key)
        if pending_idx:
            obs = np.stack([np.asarray(tiles[i], dtype=np.float32) / 255.0 for i in pending_idx])[
                :, None, :, :
            ]
            exp = self._expected_onehot([chars[i] for i in pending_idx])
            if self.batched:
                verdicts = self.model.predict(obs, exp)
                self.invocations += len(pending_idx)
            else:
                verdicts = np.zeros(len(pending_idx), dtype=bool)
                for j in range(len(pending_idx)):
                    verdicts[j] = bool(self.model.predict(obs[j : j + 1], exp[j : j + 1])[0])
                    self.invocations += 1
            for j, i in enumerate(pending_idx):
                results[i] = verdicts[j]
                if self.cache is not None and keys[j] is not None:
                    self.cache.put(keys[j], bool(verdicts[j]))
        return results

    #: Alignment search offsets for cells that fail at the nominal crop.
    #: Viewport detection is integer-precise while rendering stacks place
    #: glyphs with sub-pixel phase, so a failing cell is re-examined at
    #: one-pixel shifts before being reported as tampered.  An attacker
    #: gains nothing: every retry still has to match the expected char.
    RETRY_OFFSETS = (
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
        (2, 0), (-2, 0), (0, 2), (0, -2),
    )

    def verify_cells(
        self,
        frame_pixels: np.ndarray,
        cells: list,
        offset_x: int = 0,
        offset_y: int = 0,
        background: float = 255.0,
    ) -> np.ndarray:
        """Verify manifest character cells against a sampled frame."""
        tiles = [
            glyph_tile_from_frame(frame_pixels, cell, offset_x, offset_y, background)
            for cell in cells
        ]
        verdicts = self.verify_tiles(tiles, [c.char for c in cells])
        failing = [i for i, v in enumerate(verdicts) if not v]
        for dx, dy in self.RETRY_OFFSETS:
            if not failing:
                break
            retry_tiles = [
                glyph_tile_from_frame(
                    frame_pixels, cells[i], offset_x + dx, offset_y + dy, background
                )
                for i in failing
            ]
            retry = self.verify_tiles(retry_tiles, [cells[i].char for i in failing])
            still = []
            for j, i in enumerate(failing):
                if retry[j]:
                    verdicts[i] = True
                else:
                    still.append(i)
            failing = still
        return verdicts


class ImageVerifier:
    """Graphics model wrapper: 32x32 observed/expected region matching."""

    def __init__(self, model: MatcherModel, batched: bool = False, cache=None) -> None:
        self.model = model
        self.batched = batched
        self.cache = cache
        self.invocations = 0

    def reset_counters(self) -> None:
        self.invocations = 0

    def verify_region(self, observed: np.ndarray, expected: np.ndarray, background: float = 255.0) -> bool:
        """Match an observed region against its expected appearance.

        Both rasters are tiled into 32x32 unit inputs; the region matches
        only if every tile pair matches.
        """
        observed = np.asarray(observed, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if observed.shape != expected.shape:
            return False
        obs_tiles = split_region_into_tiles(observed, background)
        exp_tiles = split_region_into_tiles(expected, background)
        pairs = []
        pending = []
        keys = []
        verdict_parts = []
        for (ot, _), (et, _) in zip(obs_tiles, exp_tiles):
            if self.cache is not None:
                key = f"img:{region_digest(ot)}:{region_digest(et)}"
                hit = self.cache.get(key)
                if hit is not None:
                    verdict_parts.append(bool(hit))
                    continue
                keys.append(key)
            else:
                keys.append(None)
            pending.append((ot, et))
        del pairs
        if pending:
            obs = np.stack([p[0] for p in pending]).astype(np.float32)[:, None, :, :] / 255.0
            exp = np.stack([p[1] for p in pending]).astype(np.float32)[:, None, :, :] / 255.0
            if self.batched:
                verdicts = self.model.predict(obs, exp)
                self.invocations += len(pending)
            else:
                verdicts = np.zeros(len(pending), dtype=bool)
                for j in range(len(pending)):
                    verdicts[j] = bool(self.model.predict(obs[j : j + 1], exp[j : j + 1])[0])
                    self.invocations += 1
            for j, verdict in enumerate(verdicts):
                verdict_parts.append(bool(verdict))
                if self.cache is not None and keys[j] is not None:
                    self.cache.put(keys[j], bool(verdict))
        return all(verdict_parts) if verdict_parts else True
