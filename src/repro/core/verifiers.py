"""CNN verifier wrappers: unit-input extraction, caching, batching.

The *text verifier* consumes one rendered character tile plus the expected
character; the *image verifier* consumes a 32x32 observed/expected region
pair (paper Table II).  Both support:

* **sequential** mode — one model forward per unit input (the paper's
  CPU setup), and
* **batched** mode — all unit inputs of a call in one vectorized forward
  (the GPU-accelerated setup; batching is where the speedup comes from).

Each wrapper counts model invocations (the unit of Table VI) and caches
verdicts keyed by a digest of the unit input (paper §IV-A Caching).

Frame-level plan batching
-------------------------

Per-entry calls cap vectorization at one manifest entry.  A
:class:`ValidationPlan` instead collects *every* unit input of a frame —
glyph tiles from all text entries, 32x32 observed/expected pairs from all
image regions — so :meth:`TextVerifier.execute_plan` and
:meth:`ImageVerifier.execute_plan` can run the whole frame as one
(chunked) vectorized forward per model kind, plus one extra batched round
per alignment-retry offset ring for the cells that fail the nominal crop.
The per-entry methods (``verify_cells``, ``verify_region``) are thin
wrappers that build and execute a single-entry plan, so both modes share
one code path and produce identical verdicts.

Zero-copy plan transport
------------------------

A plan does not hold lists of per-unit arrays: it owns pooled
``(N, 32, 32)`` float32 buffers (:class:`repro.core.planbuf.PlanBuffers`)
plus plain metadata columns, and the collect pass writes every crop in
place (``glyph_tile_from_frame(..., out=row)``,
:func:`region_tiles_into`).  Execution feeds buffer *views* to the model
— pending rows are gathered into the executing thread's pooled scratch,
normalized in place, and handed to the frozen engine without an
intermediate stack; the alignment-retry rings re-extract failing cells
into one reusable ring buffer per round.  Steady-state repeated-frame
validation therefore performs zero per-unit array allocations; the
``hot-alloc`` witness-lint rule pins the buffer-writing functions.

Cross-session runtime
---------------------

Plan batching caps vectorization at one frame of one session.  A verifier
constructed with a ``runtime`` (the service's shared
:class:`~repro.runtime.executor.ValidationExecutor`) reroutes only the
model forward itself through the runtime's coalescing micro-batcher, so
concurrent sessions' rounds merge into global batches.  Everything else —
cache lookups, duplicate collapsing, the alignment-retry rings — stays
here, which is why rerouting cannot change a verdict.

Frozen inference
----------------

Independent of *where* a forward runs (inline, plan-batched, runtime) is
*what* executes it: with ``inference="frozen"`` (the default) verifiers
feed unit inputs to the model's compiled frozen twin
(:mod:`repro.nn.infer`) — fused float32 stages over reused per-shape
workspaces, no inference lock; ``inference="training"`` keeps the
layer-by-layer ``Sequential`` forward.  Decisions are identical either
way.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import hot_path
from repro.core.planbuf import PLAN_DTYPE, PlanBuffers, thread_pool
from repro.obs.spans import maybe_span
from repro.nn.data import CHAR_TO_INDEX, collapse_char
from repro.nn.infer import fail_closed_verdicts, predict_fn
from repro.nn.model import PREDICT_CHUNK, MatcherModel
from repro.runtime.batcher import forwards_for
from repro.vision.hashing import region_digest
from repro.vision.image import DTYPE as RASTER_DTYPE
from repro.vision.image import as_array
from repro.vision.ops import resize_bilinear
from repro.vspec.spec import CharCell

#: Model input side length.
TILE = 32

#: NCC floor for structural (non-CNN) region matching of UI chrome.
STRUCTURAL_NCC_FLOOR = 0.80


#: Maximum mean absolute residual (intensity levels) after affine
#: intensity alignment for structural matching.
STRUCTURAL_MAD_CEILING = 10.0

#: Shared empty verdict-tile array (plans with no units of a kind).
_NO_TILES = np.zeros((0, TILE, TILE), dtype=PLAN_DTYPE)


def structural_match(
    observed: np.ndarray,
    expected: np.ndarray,
    threshold: float = STRUCTURAL_NCC_FLOOR,
    mad_ceiling: float = STRUCTURAL_MAD_CEILING,
) -> bool:
    """Match UI chrome regions (buttons, widget states) structurally.

    The paper encodes visual input states as "a well-defined appearance";
    matching them needs tolerance to rendering-stack intensity/gamma
    shifts but not to content changes.  Two complementary criteria:

    * zero-normalized cross-correlation >= ``threshold`` — affine-
      intensity-invariant structure agreement, and
    * mean absolute residual after least-squares affine intensity
      alignment <= ``mad_ceiling`` — catches *localized* content changes
      (a checkmark appearing in a mostly-border-dominated widget) that
      barely move a global correlation score.

    The CNN image model stays reserved for content images (icons, photos,
    screen regions), its training domain.
    """
    from repro.vision.match import normalized_cross_correlation

    observed = np.asarray(observed)
    expected = np.asarray(expected)
    if observed.shape != expected.shape:
        return False
    if normalized_cross_correlation(observed, expected) < threshold:
        return False
    obs_std = observed.std()
    if obs_std < 1e-9:
        aligned = np.full_like(observed, expected.mean(), dtype=RASTER_DTYPE)
    else:
        aligned = (observed - observed.mean()) * (expected.std() / obs_std) + expected.mean()
    return float(np.mean(np.abs(aligned - expected))) <= mad_ceiling


def _paste_window(frame: np.ndarray, fx: int, fy: int, w: int, h: int, dst: np.ndarray, dst_x: int) -> None:
    """Copy the clipped ``(fx, fy, w, h)`` window of ``frame`` into ``dst``
    starting at column ``dst_x`` (``dst`` is pre-filled with background).

    Same clip math as :meth:`repro.vision.image.Image.crop_clipped`, but
    writing into a caller-owned buffer instead of allocating.
    """
    fh, fw = frame.shape
    sx0, sy0 = max(fx, 0), max(fy, 0)
    sx1, sy1 = min(fx + w, fw), min(fy + h, fh)
    if sx1 > sx0 and sy1 > sy0:
        dst[sy0 - fy : sy1 - fy, dst_x + (sx0 - fx) : dst_x + (sx1 - fx)] = frame[sy0:sy1, sx0:sx1]


@hot_path
def glyph_tile_from_frame(
    frame_pixels: np.ndarray,
    cell: CharCell,
    offset_x: int,
    offset_y: int,
    background: float = 255.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Extract the square glyph region for a manifest character cell.

    Mirrors :func:`repro.raster.text.render_text_line` geometry: glyph
    tiles are squares of side ``cell.h`` centred in the advance-wide cell.
    ``offset_*`` translate page coordinates into frame coordinates (the
    viewport scroll).  Writes the 32x32 tile into ``out`` when given (a
    pooled plan-buffer row; the float32 cast happens on the write) and
    returns it; without ``out`` a fresh float64 tile is returned.
    """
    size = cell.h
    advance = cell.w
    if advance >= size:
        x0 = cell.x + (advance - size) // 2
        pad_l = 0
        src_w = size
    else:
        # The renderer cropped the glyph tile horizontally; reconstruct the
        # square by padding with background.
        x0 = cell.x
        pad_l = (size - advance) // 2
        src_w = advance
    fy = cell.y - offset_y
    fx = x0 - offset_x
    frame = as_array(frame_pixels)
    if out is None:
        # witness-lint: allow[hot-alloc] -- compat path: caller gave no out= row
        out = np.empty((TILE, TILE), dtype=RASTER_DTYPE)
    if size == TILE:
        out.fill(background)
        _paste_window(frame, fx, fy, src_w, size, out, pad_l)
        return out
    pool = thread_pool()
    square = pool.reserve(("glyph-square", size), 1, (size, size), dtype=RASTER_DTYPE)[0]
    square.fill(background)
    _paste_window(frame, fx, fy, src_w, size, square, pad_l)
    scratch = pool.reserve(("resize-scratch",), 4, (TILE, TILE), dtype=RASTER_DTYPE)
    return resize_bilinear(square, TILE, TILE, out=out, scratch=scratch[:4])


def split_region_into_tiles(region: np.ndarray, background: float = 255.0) -> list:
    """Split a region into 32x32 tiles (edge tiles padded with background).

    Returns ``(tile, (row, col))`` pairs; regions smaller than one tile
    yield a single padded tile.  This is the unit-input decomposition the
    image verifier is invoked on (paper: "a 32-by-32 sub-region").
    Allocating compat form of :func:`region_tiles_into`.
    """
    h, w = region.shape
    tiles = []
    rows = max(1, (h + TILE - 1) // TILE)
    cols = max(1, (w + TILE - 1) // TILE)
    for r in range(rows):
        for c in range(cols):
            tile = np.full((TILE, TILE), background, dtype=RASTER_DTYPE)
            y0, x0 = r * TILE, c * TILE
            y1, x1 = min(y0 + TILE, h), min(x0 + TILE, w)
            if y1 > y0 and x1 > x0:
                tile[: y1 - y0, : x1 - x0] = region[y0:y1, x0:x1]
            tiles.append((tile, (r, c)))
    return tiles


def region_tile_count(shape: tuple) -> int:
    """How many 32x32 unit tiles a region of ``shape`` decomposes into."""
    h, w = shape
    return max(1, (h + TILE - 1) // TILE) * max(1, (w + TILE - 1) // TILE)


@hot_path
def region_tiles_into(region: np.ndarray, out: np.ndarray, background: float = 255.0) -> int:
    """Tile a region into 32x32 unit inputs written into rows of ``out``.

    Same decomposition (and padding) as :func:`split_region_into_tiles`,
    but each tile is written in place into ``out[i]`` (a pooled plan
    buffer) instead of being allocated.  Returns the tile count.
    """
    h, w = region.shape
    rows = max(1, (h + TILE - 1) // TILE)
    cols = max(1, (w + TILE - 1) // TILE)
    i = 0
    for r in range(rows):
        y0 = r * TILE
        y1 = min(y0 + TILE, h)
        for c in range(cols):
            x0 = c * TILE
            x1 = min(x0 + TILE, w)
            tile = out[i]
            tile.fill(background)
            if y1 > y0 and x1 > x0:
                tile[: y1 - y0, : x1 - x0] = region[y0:y1, x0:x1]
            i += 1
    return i


def _check_chunk_size(chunk_size: int | None) -> int | None:
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be None or >= 1, got {chunk_size}")
    return chunk_size


def _dedupe_pending(keys: list):
    """Collapse pending unit inputs that share a cache key.

    Repeated glyphs across a frame-level plan hash to the same key before
    any verdict is cached (puts only land after the round's predict), so
    without dedup every duplicate would be fed to the model.  Returns
    ``(rep_positions, row_of)``: the positions (into the pending list)
    that must actually be predicted, and each pending entry's row in that
    predicted batch.  Keyless entries (no cache) are never collapsed.
    """
    rep_row: dict = {}
    rep_positions: list = []
    row_of: list = []
    for j, key in enumerate(keys):
        if key is not None and key in rep_row:
            row_of.append(rep_row[key])
            continue
        row = len(rep_positions)
        rep_positions.append(j)
        if key is not None:
            rep_row[key] = row
        row_of.append(row)
    return rep_positions, row_of


class _PairRows:
    """Sequence view pairing rows of two ``(N, 32, 32)`` buffers.

    Lets :meth:`ImageVerifier.verify_pairs` consume pooled plan columns
    through the same indexing protocol as a compat list of
    ``(observed, expected)`` tuples, without materializing pair objects.
    """

    __slots__ = ("observed", "expected")

    def __init__(self, observed: np.ndarray, expected: np.ndarray) -> None:
        self.observed = observed
        self.expected = expected

    def __len__(self) -> int:
        return self.observed.shape[0]

    def __getitem__(self, i):
        return self.observed[i], self.expected[i]


class ValidationPlan:
    """Every verifier unit input of one frame, collected before execution.

    The collect phase (:meth:`repro.core.display.DisplayValidator.validate`)
    walks the whole manifest and funnels unit inputs here; the execute
    phase then runs one vectorized (chunked) forward per model kind and
    scatters verdicts back to the registered index ranges/groups.  Text
    units keep per-unit retry metadata so the alignment-retry pyramid runs
    as one batched round per offset ring across *all* failing cells of
    the frame, instead of up to 12 serial rounds per entry.

    Unit inputs live in pooled ``(N, 32, 32)`` float32 buffers owned by
    ``self.buffers`` (thread-confined to the collecting thread); a plan
    is reused across frames via :meth:`reset`, so steady-state collection
    writes into resident memory.
    """

    #: Pool keys of the plan's transport columns.
    TEXT_KEY = "text-tiles"
    IMAGE_OBS_KEY = "image-obs"
    IMAGE_EXP_KEY = "image-exp"

    def __init__(self, buffers: PlanBuffers | None = None) -> None:
        self.buffers = PlanBuffers() if buffers is None else buffers
        #: Expected character per text unit.
        self.text_chars: list = []
        #: Per-unit alignment-retry metadata: ``(frame_pixels, cell,
        #: offset_x, offset_y, background)`` or ``None`` for units with no
        #: alignment search (e.g. tiles cut from a nested raster that was
        #: already offset-matched).
        self.text_retries: list = []
        self.image_groups: list = []  # (start, stop) ranges into image pairs
        #: Retry rings actually executed (filled by TextVerifier.execute_plan).
        self.text_retry_rounds = 0
        self._text_count = 0
        self._image_count = 0
        self._text_backing: np.ndarray | None = None
        self._image_obs_backing: np.ndarray | None = None
        self._image_exp_backing: np.ndarray | None = None

    def reset(self) -> None:
        """Forget all collected units; keep the pooled buffers resident.

        Reset marks a frame boundary: pool ownership is released so the
        thread driving *this* frame claims the buffers (sessions migrate
        between worker threads frame to frame; witness-san flags only
        mid-frame cross-thread use).
        """
        self.buffers.release_ownership()
        self.text_chars.clear()
        self.text_retries.clear()
        self.image_groups.clear()
        self.text_retry_rounds = 0
        self._text_count = 0
        self._image_count = 0

    # -- collection --------------------------------------------------------

    @hot_path
    def add_cells(
        self,
        frame_pixels: np.ndarray,
        cells: list,
        offset_x: int = 0,
        offset_y: int = 0,
        background: float = 255.0,
        retry: bool = True,
    ) -> slice:
        """Queue manifest character cells; returns their verdict slice.

        Each cell's glyph tile is extracted straight into the plan's
        pooled text buffer.  ``retry=False`` queues the cells without
        alignment-retry metadata.
        """
        start = self._text_count
        backing = self.buffers.reserve(self.TEXT_KEY, start + len(cells), (TILE, TILE))
        self._text_backing = backing
        row = start
        for cell in cells:
            glyph_tile_from_frame(
                frame_pixels, cell, offset_x, offset_y, background, out=backing[row]
            )
            self.text_chars.append(cell.char)
            self.text_retries.append(
                (frame_pixels, cell, offset_x, offset_y, background) if retry else None
            )
            row += 1
        self._text_count = row
        return slice(start, row)

    @hot_path
    def add_tiles(self, tiles, chars: list) -> slice:
        """Queue pre-extracted glyph tiles (no alignment retry)."""
        if len(tiles) != len(chars):
            raise ValueError(f"tiles/chars misaligned: {len(tiles)} vs {len(chars)}")
        start = self._text_count
        backing = self.buffers.reserve(self.TEXT_KEY, start + len(tiles), (TILE, TILE))
        self._text_backing = backing
        row = start
        for tile, char in zip(tiles, chars):
            backing[row] = tile
            self.text_chars.append(char)
            self.text_retries.append(None)
            row += 1
        self._text_count = row
        return slice(start, row)

    @hot_path
    def add_region(self, observed: np.ndarray, expected: np.ndarray, background: float = 255.0) -> int:
        """Queue an observed/expected region pair; returns its group index.

        Both rasters are tiled into 32x32 unit inputs written into the
        plan's pooled image columns (float32, the canonical transport
        dtype); the group verdict is the AND over its tile pairs.
        """
        observed = np.asarray(observed)
        expected = np.asarray(expected)
        if observed.shape != expected.shape:
            raise ValueError(
                f"region shapes must agree, got {observed.shape} vs {expected.shape}"
            )
        count = region_tile_count(observed.shape)
        start = self._image_count
        obs_backing = self.buffers.reserve(self.IMAGE_OBS_KEY, start + count, (TILE, TILE))
        exp_backing = self.buffers.reserve(self.IMAGE_EXP_KEY, start + count, (TILE, TILE))
        self._image_obs_backing = obs_backing
        self._image_exp_backing = exp_backing
        region_tiles_into(observed, obs_backing[start : start + count], background)
        region_tiles_into(expected, exp_backing[start : start + count], background)
        self._image_count = start + count
        self.image_groups.append((start, self._image_count))
        return len(self.image_groups) - 1

    # -- buffer views ------------------------------------------------------

    @property
    def text_tiles(self) -> np.ndarray:
        """``(N, 32, 32)`` float32 view of the collected glyph tiles."""
        if self._text_count == 0:
            return _NO_TILES
        return self._text_backing[: self._text_count]

    @property
    def image_observed(self) -> np.ndarray:
        if self._image_count == 0:
            return _NO_TILES
        return self._image_obs_backing[: self._image_count]

    @property
    def image_expected(self) -> np.ndarray:
        if self._image_count == 0:
            return _NO_TILES
        return self._image_exp_backing[: self._image_count]

    @property
    def image_pairs(self) -> _PairRows:
        """Pair-indexable view of the image columns (compat protocol)."""
        return _PairRows(self.image_observed, self.image_expected)

    # -- stats -------------------------------------------------------------

    @property
    def text_unit_count(self) -> int:
        return self._text_count

    @property
    def image_pair_count(self) -> int:
        return self._image_count


class TextVerifier:
    """Text model wrapper with caching, batching and invocation counting.

    ``invocations`` counts unit inputs fed to the model (the unit of
    Table VI); ``forwards`` counts actual model forward passes — in
    batched mode one (chunked) forward covers many unit inputs, which is
    where the paper's GPU-setup speedup comes from.  With a ``runtime``
    the forward coalesces with other sessions' rounds and ``forwards``
    counts the submission's share of the flush (the chunk-forwards its
    own rows rode in).
    """

    def __init__(
        self,
        model: MatcherModel,
        batched: bool = False,
        cache=None,
        chunk_size: int | None = PREDICT_CHUNK,
        runtime=None,
        inference: str = "frozen",
        tracer=None,
        faults=None,
    ) -> None:
        if runtime is not None and not batched:
            raise ValueError("a shared runtime requires batched=True")
        self.model = model
        self.batched = batched
        self.cache = cache
        self.chunk_size = _check_chunk_size(chunk_size)
        self.runtime = runtime
        self.inference = inference
        #: Optional :class:`repro.obs.spans.SpanTracer`; ``None`` (the
        #: default) keeps every span site on the no-op fast path.
        self.tracer = tracer
        self._predict = predict_fn(model, inference)
        if faults is not None:
            # Arm the ``infer.*`` seams: the wrapped forward may raise or
            # return NaN logits; the retry/sanitize helpers absorb both.
            self._predict = faults.wrap_predict(self._predict)
        self.invocations = 0
        self.forwards = 0
        #: Inline forwards that raised and were retried once.
        self.forward_retries = 0
        #: Cache lookups/stores that raised and were treated as misses.
        self.cache_faults = 0

    def reset_counters(self) -> None:
        self.invocations = 0
        self.forwards = 0

    def _cache_get(self, key: str):
        """A cache lookup that degrades, never decides: errors are misses."""
        try:
            return self.cache.get(key)
        except Exception:
            self.cache_faults += 1
            return None

    def _cache_put(self, key: str, value: bool) -> None:
        try:
            self.cache.put(key, value)
        except Exception:
            self.cache_faults += 1

    def _forward_batch(self, obs: np.ndarray, exp: np.ndarray) -> np.ndarray:
        """One sanitized batched forward, retrying once if it raises."""
        try:
            raw = self._predict(obs, exp, chunk_size=self.chunk_size)
        except Exception:
            self.forward_retries += 1
            raw = self._predict(obs, exp, chunk_size=self.chunk_size)
        return fail_closed_verdicts(raw)

    def _forward_unit(self, obs1: np.ndarray, exp1: np.ndarray) -> np.ndarray:
        """One sanitized single-unit forward, retrying once if it raises."""
        try:
            raw = self._predict(obs1, exp1)
        except Exception:
            self.forward_retries += 1
            raw = self._predict(obs1, exp1)
        return fail_closed_verdicts(raw)

    def _expected_onehot_rows(self, chars: list) -> np.ndarray:
        """One-hot expected-class rows in the thread's pooled buffer."""
        m = len(chars)
        backing = thread_pool().reserve(("text-onehot",), m, (len(CHAR_TO_INDEX),))
        rows = backing[:m]
        rows.fill(0.0)
        for row, char in enumerate(chars):
            rows[row, CHAR_TO_INDEX[collapse_char(char)]] = 1.0
        return rows

    def verify_tiles(self, tiles, chars: list) -> np.ndarray:
        """Match verdicts for (tile, expected char) pairs.

        ``tiles`` is a ``(N, 32, 32)`` buffer view (plan path) or a list
        of 32x32 tiles (compat path); either way pending rows are
        gathered into pooled scratch and normalized in place, so no
        per-unit array is allocated.
        """
        if len(tiles) != len(chars):
            raise ValueError(f"tiles/chars misaligned: {len(tiles)} vs {len(chars)}")
        n = len(tiles)
        if n == 0:
            return np.zeros(0, dtype=bool)
        results = np.zeros(n, dtype=bool)
        pending_idx = []
        keys = []
        for i in range(n):
            key = None
            if self.cache is not None:
                key = f"text:{region_digest(tiles[i])}:{collapse_char(chars[i])}"
                hit = self._cache_get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending_idx.append(i)
            keys.append(key)
        if pending_idx:
            rep_positions, row_of = _dedupe_pending(keys)
            m = len(rep_positions)
            backing = thread_pool().reserve(("text-pending",), m, (TILE, TILE))
            for row, j in enumerate(rep_positions):
                backing[row] = tiles[pending_idx[j]]
            obs = backing[:m].reshape(m, 1, TILE, TILE)
            np.divide(obs, 255.0, out=obs)
            exp = self._expected_onehot_rows([chars[pending_idx[j]] for j in rep_positions])
            if self.batched:
                self.invocations += m
                if self.runtime is not None:
                    with maybe_span(self.tracer, "runtime.submit.text"):
                        verdicts, forwards = self.runtime.predict(
                            "text", obs, exp, tracer=self.tracer
                        )
                    self.forwards += forwards
                else:
                    with maybe_span(self.tracer, "forward.text"):
                        verdicts = self._forward_batch(obs, exp)
                    self.forwards += forwards_for(m, self.chunk_size)
            else:
                verdicts = np.zeros(m, dtype=bool)
                with maybe_span(self.tracer, "forward.text"):
                    for j in range(m):
                        verdicts[j] = bool(self._forward_unit(obs[j : j + 1], exp[j : j + 1])[0])
                        self.invocations += 1
                        self.forwards += 1
            for row, j in enumerate(rep_positions):
                if self.cache is not None and keys[j] is not None:
                    self._cache_put(keys[j], bool(verdicts[row]))
            for j, i in enumerate(pending_idx):
                results[i] = verdicts[row_of[j]]
        return results

    #: Alignment search offsets for cells that fail at the nominal crop.
    #: Viewport detection is integer-precise while rendering stacks place
    #: glyphs with sub-pixel phase, so a failing cell is re-examined at
    #: one-pixel shifts before being reported as tampered.  An attacker
    #: gains nothing: every retry still has to match the expected char.
    RETRY_OFFSETS = (
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
        (2, 0), (-2, 0), (0, 2), (0, -2),
    )

    def verify_cells(
        self,
        frame_pixels: np.ndarray,
        cells: list,
        offset_x: int = 0,
        offset_y: int = 0,
        background: float = 255.0,
    ) -> np.ndarray:
        """Verify manifest character cells against a sampled frame.

        Thin wrapper: builds a single-entry :class:`ValidationPlan` and
        executes it, so per-entry and frame-level callers share one code
        path (nominal round + batched retry rings).
        """
        plan = ValidationPlan()
        plan.add_cells(frame_pixels, cells, offset_x, offset_y, background)
        return self.execute_plan(plan)

    def execute_plan(self, plan: ValidationPlan) -> np.ndarray:
        """Verdicts for every text unit of a plan.

        One vectorized (chunked) nominal round over all queued tiles,
        then — for units that fail and carry retry metadata — one batched
        round per offset ring of :data:`RETRY_OFFSETS` across all failing
        units of the frame at once.  Each ring re-extracts its tiles into
        one pooled retry buffer (reused round over round, frame over
        frame).
        """
        verdicts = self.verify_tiles(plan.text_tiles, plan.text_chars)
        retries = plan.text_retries
        failing = [i for i, v in enumerate(verdicts) if not v and retries[i] is not None]
        rounds = 0
        pool = thread_pool()
        for dx, dy in self.RETRY_OFFSETS:
            if not failing:
                break
            rounds += 1
            ring = pool.reserve(("text-retry",), len(failing), (TILE, TILE))
            for row, i in enumerate(failing):
                frame_pixels, cell, offset_x, offset_y, background = retries[i]
                glyph_tile_from_frame(
                    frame_pixels, cell, offset_x + dx, offset_y + dy, background, out=ring[row]
                )
            retry = self.verify_tiles(
                ring[: len(failing)], [plan.text_chars[i] for i in failing]
            )
            still = []
            for j, i in enumerate(failing):
                if retry[j]:
                    verdicts[i] = True
                else:
                    still.append(i)
            failing = still
        plan.text_retry_rounds = rounds
        return verdicts


class ImageVerifier:
    """Graphics model wrapper: 32x32 observed/expected region matching.

    ``invocations``/``forwards`` follow the same semantics as
    :class:`TextVerifier`: unit inputs fed to the model vs actual model
    forward passes (a flush share when routed through a ``runtime``).
    """

    def __init__(
        self,
        model: MatcherModel,
        batched: bool = False,
        cache=None,
        chunk_size: int | None = PREDICT_CHUNK,
        runtime=None,
        inference: str = "frozen",
        tracer=None,
        faults=None,
    ) -> None:
        if runtime is not None and not batched:
            raise ValueError("a shared runtime requires batched=True")
        self.model = model
        self.batched = batched
        self.cache = cache
        self.chunk_size = _check_chunk_size(chunk_size)
        self.runtime = runtime
        self.inference = inference
        #: Optional :class:`repro.obs.spans.SpanTracer` (see TextVerifier).
        self.tracer = tracer
        self._predict = predict_fn(model, inference)
        if faults is not None:
            # Same ``infer.*`` seam arming as TextVerifier.
            self._predict = faults.wrap_predict(self._predict)
        self.invocations = 0
        self.forwards = 0
        #: Inline forwards that raised and were retried once.
        self.forward_retries = 0
        #: Cache lookups/stores that raised and were treated as misses.
        self.cache_faults = 0

    def reset_counters(self) -> None:
        self.invocations = 0
        self.forwards = 0

    # Same degrade-never-decide guards as TextVerifier: a raising cache is
    # a miss, a raising forward gets one retry, and verdicts are always
    # sanitized fail-closed before caching or scattering.
    _cache_get = TextVerifier._cache_get
    _cache_put = TextVerifier._cache_put
    _forward_batch = TextVerifier._forward_batch
    _forward_unit = TextVerifier._forward_unit

    def verify_pairs(self, pairs) -> np.ndarray:
        """Match verdicts for 32x32 ``(observed, expected)`` tile pairs.

        ``pairs`` is anything pair-indexable: a plan's pooled
        :class:`_PairRows` view or a compat list of tuples.  Pending rows
        are gathered into pooled scratch and normalized in place.
        """
        n = len(pairs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        results = np.zeros(n, dtype=bool)
        pending_idx = []
        keys = []
        for i in range(n):
            observed, expected = pairs[i]
            key = None
            if self.cache is not None:
                key = f"img:{region_digest(observed)}:{region_digest(expected)}"
                hit = self._cache_get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending_idx.append(i)
            keys.append(key)
        if pending_idx:
            rep_positions, row_of = _dedupe_pending(keys)
            m = len(rep_positions)
            pool = thread_pool()
            obs_backing = pool.reserve(("image-pending-obs",), m, (TILE, TILE))
            exp_backing = pool.reserve(("image-pending-exp",), m, (TILE, TILE))
            for row, j in enumerate(rep_positions):
                observed, expected = pairs[pending_idx[j]]
                obs_backing[row] = observed
                exp_backing[row] = expected
            obs = obs_backing[:m].reshape(m, 1, TILE, TILE)
            exp = exp_backing[:m].reshape(m, 1, TILE, TILE)
            np.divide(obs, 255.0, out=obs)
            np.divide(exp, 255.0, out=exp)
            if self.batched:
                self.invocations += m
                if self.runtime is not None:
                    with maybe_span(self.tracer, "runtime.submit.image"):
                        verdicts, forwards = self.runtime.predict(
                            "image", obs, exp, tracer=self.tracer
                        )
                    self.forwards += forwards
                else:
                    with maybe_span(self.tracer, "forward.image"):
                        verdicts = self._forward_batch(obs, exp)
                    self.forwards += forwards_for(m, self.chunk_size)
            else:
                verdicts = np.zeros(m, dtype=bool)
                with maybe_span(self.tracer, "forward.image"):
                    for j in range(m):
                        verdicts[j] = bool(self._forward_unit(obs[j : j + 1], exp[j : j + 1])[0])
                        self.invocations += 1
                        self.forwards += 1
            for row, j in enumerate(rep_positions):
                if self.cache is not None and keys[j] is not None:
                    self._cache_put(keys[j], bool(verdicts[row]))
            for j, i in enumerate(pending_idx):
                results[i] = verdicts[row_of[j]]
        return results

    def verify_region(self, observed: np.ndarray, expected: np.ndarray, background: float = 255.0) -> bool:
        """Match an observed region against its expected appearance.

        Thin wrapper over a single-region :class:`ValidationPlan`: both
        rasters are tiled into 32x32 unit inputs and the region matches
        only if every tile pair matches.
        """
        observed = np.asarray(observed)
        expected = np.asarray(expected)
        if observed.shape != expected.shape:
            return False
        plan = ValidationPlan()
        group = plan.add_region(observed, expected, background)
        return self.execute_plan(plan)[group]

    def execute_plan(self, plan: ValidationPlan) -> list:
        """Per-group verdicts for every image region of a plan.

        All tile pairs of all regions go through one vectorized (chunked)
        :meth:`verify_pairs` call; each group's verdict is the AND over
        its tile range.
        """
        verdicts = self.verify_pairs(plan.image_pairs)
        return [
            bool(np.all(verdicts[start:stop])) if stop > start else True
            for start, stop in plan.image_groups
        ]
