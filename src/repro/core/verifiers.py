"""CNN verifier wrappers: unit-input extraction, caching, batching.

The *text verifier* consumes one rendered character tile plus the expected
character; the *image verifier* consumes a 32x32 observed/expected region
pair (paper Table II).  Both support:

* **sequential** mode — one model forward per unit input (the paper's
  CPU setup), and
* **batched** mode — all unit inputs of a call in one vectorized forward
  (the GPU-accelerated setup; batching is where the speedup comes from).

Each wrapper counts model invocations (the unit of Table VI) and caches
verdicts keyed by a digest of the unit input (paper §IV-A Caching).

Frame-level plan batching
-------------------------

Per-entry calls cap vectorization at one manifest entry.  A
:class:`ValidationPlan` instead collects *every* unit input of a frame —
glyph tiles from all text entries, 32x32 observed/expected pairs from all
image regions — so :meth:`TextVerifier.execute_plan` and
:meth:`ImageVerifier.execute_plan` can run the whole frame as one
(chunked) vectorized forward per model kind, plus one extra batched round
per alignment-retry offset ring for the cells that fail the nominal crop.
The per-entry methods (``verify_cells``, ``verify_region``) are thin
wrappers that build and execute a single-entry plan, so both modes share
one code path and produce identical verdicts.

Cross-session runtime
---------------------

Plan batching caps vectorization at one frame of one session.  A verifier
constructed with a ``runtime`` (the service's shared
:class:`~repro.runtime.executor.ValidationExecutor`) reroutes only the
model forward itself through the runtime's coalescing micro-batcher, so
concurrent sessions' rounds merge into global batches.  Everything else —
cache lookups, duplicate collapsing, the alignment-retry rings — stays
here, which is why rerouting cannot change a verdict.

Frozen inference
----------------

Independent of *where* a forward runs (inline, plan-batched, runtime) is
*what* executes it: with ``inference="frozen"`` (the default) verifiers
feed unit inputs to the model's compiled frozen twin
(:mod:`repro.nn.infer`) — fused float32 stages over reused per-shape
workspaces, no inference lock; ``inference="training"`` keeps the
layer-by-layer ``Sequential`` forward.  Decisions are identical either
way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import CHAR_TO_INDEX, collapse_char
from repro.nn.infer import predict_fn
from repro.nn.model import PREDICT_CHUNK, MatcherModel
from repro.nn.tensorops import one_hot
from repro.runtime.batcher import forwards_for
from repro.vision.hashing import region_digest
from repro.vision.image import Image
from repro.vision.ops import resize_bilinear
from repro.vspec.spec import CharCell

#: Model input side length.
TILE = 32

#: NCC floor for structural (non-CNN) region matching of UI chrome.
STRUCTURAL_NCC_FLOOR = 0.80


#: Maximum mean absolute residual (intensity levels) after affine
#: intensity alignment for structural matching.
STRUCTURAL_MAD_CEILING = 10.0


def structural_match(
    observed: np.ndarray,
    expected: np.ndarray,
    threshold: float = STRUCTURAL_NCC_FLOOR,
    mad_ceiling: float = STRUCTURAL_MAD_CEILING,
) -> bool:
    """Match UI chrome regions (buttons, widget states) structurally.

    The paper encodes visual input states as "a well-defined appearance";
    matching them needs tolerance to rendering-stack intensity/gamma
    shifts but not to content changes.  Two complementary criteria:

    * zero-normalized cross-correlation >= ``threshold`` — affine-
      intensity-invariant structure agreement, and
    * mean absolute residual after least-squares affine intensity
      alignment <= ``mad_ceiling`` — catches *localized* content changes
      (a checkmark appearing in a mostly-border-dominated widget) that
      barely move a global correlation score.

    The CNN image model stays reserved for content images (icons, photos,
    screen regions), its training domain.
    """
    from repro.vision.match import normalized_cross_correlation

    observed = np.asarray(observed, dtype=float)
    expected = np.asarray(expected, dtype=float)
    if observed.shape != expected.shape:
        return False
    if normalized_cross_correlation(observed, expected) < threshold:
        return False
    obs_std = observed.std()
    if obs_std < 1e-9:
        aligned = np.full_like(observed, expected.mean())
    else:
        aligned = (observed - observed.mean()) * (expected.std() / obs_std) + expected.mean()
    return float(np.mean(np.abs(aligned - expected))) <= mad_ceiling


def glyph_tile_from_frame(frame_pixels: np.ndarray, cell: CharCell, offset_x: int, offset_y: int, background: float = 255.0) -> np.ndarray:
    """Extract the square glyph region for a manifest character cell.

    Mirrors :func:`repro.raster.text.render_text_line` geometry: glyph
    tiles are squares of side ``cell.h`` centred in the advance-wide cell.
    ``offset_*`` translate page coordinates into frame coordinates (the
    viewport scroll).  Returns a 32x32 float tile.
    """
    size = cell.h
    advance = cell.w
    if advance >= size:
        x0 = cell.x + (advance - size) // 2
        pad_l = 0
    else:
        # The renderer cropped the glyph tile horizontally; reconstruct the
        # square by padding with background.
        x0 = cell.x
        pad_l = (size - advance) // 2
    fy = cell.y - offset_y
    fx = x0 - offset_x
    frame = Image(frame_pixels)
    if pad_l:
        inner = frame.crop_clipped(fx, fy, advance, size, fill=background)
        square = np.full((size, size), background)
        square[:, pad_l : pad_l + advance] = inner.pixels
    else:
        square = frame.crop_clipped(fx, fy, size, size, fill=background).pixels
    if size != TILE:
        square = resize_bilinear(square, TILE, TILE)
    return square


def split_region_into_tiles(region: np.ndarray, background: float = 255.0) -> list:
    """Split a region into 32x32 tiles (edge tiles padded with background).

    Returns ``(tile, (row, col))`` pairs; regions smaller than one tile
    yield a single padded tile.  This is the unit-input decomposition the
    image verifier is invoked on (paper: "a 32-by-32 sub-region").
    """
    h, w = region.shape
    tiles = []
    rows = max(1, (h + TILE - 1) // TILE)
    cols = max(1, (w + TILE - 1) // TILE)
    for r in range(rows):
        for c in range(cols):
            tile = np.full((TILE, TILE), background)
            y0, x0 = r * TILE, c * TILE
            y1, x1 = min(y0 + TILE, h), min(x0 + TILE, w)
            if y1 > y0 and x1 > x0:
                tile[: y1 - y0, : x1 - x0] = region[y0:y1, x0:x1]
            tiles.append((tile, (r, c)))
    return tiles


def _check_chunk_size(chunk_size: int | None) -> int | None:
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be None or >= 1, got {chunk_size}")
    return chunk_size


def _dedupe_pending(keys: list):
    """Collapse pending unit inputs that share a cache key.

    Repeated glyphs across a frame-level plan hash to the same key before
    any verdict is cached (puts only land after the round's predict), so
    without dedup every duplicate would be fed to the model.  Returns
    ``(rep_positions, row_of)``: the positions (into the pending list)
    that must actually be predicted, and each pending entry's row in that
    predicted batch.  Keyless entries (no cache) are never collapsed.
    """
    rep_row: dict = {}
    rep_positions: list = []
    row_of: list = []
    for j, key in enumerate(keys):
        if key is not None and key in rep_row:
            row_of.append(rep_row[key])
            continue
        row = len(rep_positions)
        rep_positions.append(j)
        if key is not None:
            rep_row[key] = row
        row_of.append(row)
    return rep_positions, row_of


@dataclass
class TextUnit:
    """One glyph-tile unit input collected into a :class:`ValidationPlan`.

    ``retry`` is the alignment-search hook: ``retry(dx, dy)`` re-extracts
    the tile at a one/two-pixel offset for cells that fail the nominal
    crop.  ``None`` marks units with no alignment search (e.g. tiles cut
    from a nested raster that was already offset-matched).
    """

    tile: np.ndarray
    char: str
    retry: object = None  # callable (dx, dy) -> np.ndarray, or None


class ValidationPlan:
    """Every verifier unit input of one frame, collected before execution.

    The collect phase (:meth:`repro.core.display.DisplayValidator.validate`)
    walks the whole manifest and funnels unit inputs here; the execute
    phase then runs one vectorized (chunked) forward per model kind and
    scatters verdicts back to the registered index ranges/groups.  Text
    units keep a per-unit retry hook so the alignment-retry pyramid runs
    as one batched round per offset ring across *all* failing cells of
    the frame, instead of up to 12 serial rounds per entry.
    """

    def __init__(self) -> None:
        self.text_units: list = []
        self.image_pairs: list = []  # (observed 32x32, expected 32x32)
        self.image_groups: list = []  # (start, stop) ranges into image_pairs
        #: Retry rings actually executed (filled by TextVerifier.execute_plan).
        self.text_retry_rounds = 0

    # -- collection --------------------------------------------------------

    def add_cells(
        self,
        frame_pixels: np.ndarray,
        cells: list,
        offset_x: int = 0,
        offset_y: int = 0,
        background: float = 255.0,
    ) -> slice:
        """Queue manifest character cells; returns their verdict slice."""
        start = len(self.text_units)
        for cell in cells:

            def retry(dx, dy, _cell=cell):
                return glyph_tile_from_frame(
                    frame_pixels, _cell, offset_x + dx, offset_y + dy, background
                )

            self.text_units.append(
                TextUnit(
                    tile=glyph_tile_from_frame(frame_pixels, cell, offset_x, offset_y, background),
                    char=cell.char,
                    retry=retry,
                )
            )
        return slice(start, len(self.text_units))

    def add_tiles(self, tiles: list, chars: list) -> slice:
        """Queue pre-extracted glyph tiles (no alignment retry)."""
        if len(tiles) != len(chars):
            raise ValueError(f"tiles/chars misaligned: {len(tiles)} vs {len(chars)}")
        start = len(self.text_units)
        self.text_units.extend(TextUnit(tile=t, char=c) for t, c in zip(tiles, chars))
        return slice(start, len(self.text_units))

    def add_region(self, observed: np.ndarray, expected: np.ndarray, background: float = 255.0) -> int:
        """Queue an observed/expected region pair; returns its group index.

        Both rasters are tiled into 32x32 unit inputs; the group verdict
        is the AND over its tile pairs.  Shapes must already agree.
        """
        obs_tiles = split_region_into_tiles(np.asarray(observed, dtype=float), background)
        exp_tiles = split_region_into_tiles(np.asarray(expected, dtype=float), background)
        start = len(self.image_pairs)
        self.image_pairs.extend((ot, et) for (ot, _), (et, _) in zip(obs_tiles, exp_tiles))
        self.image_groups.append((start, len(self.image_pairs)))
        return len(self.image_groups) - 1

    # -- stats -------------------------------------------------------------

    @property
    def text_unit_count(self) -> int:
        return len(self.text_units)

    @property
    def image_pair_count(self) -> int:
        return len(self.image_pairs)


class TextVerifier:
    """Text model wrapper with caching, batching and invocation counting.

    ``invocations`` counts unit inputs fed to the model (the unit of
    Table VI); ``forwards`` counts actual model forward passes — in
    batched mode one (chunked) forward covers many unit inputs, which is
    where the paper's GPU-setup speedup comes from.  With a ``runtime``
    the forward coalesces with other sessions' rounds and ``forwards``
    counts the submission's share of the flush (the chunk-forwards its
    own rows rode in).
    """

    def __init__(
        self,
        model: MatcherModel,
        batched: bool = False,
        cache=None,
        chunk_size: int | None = PREDICT_CHUNK,
        runtime=None,
        inference: str = "frozen",
    ) -> None:
        if runtime is not None and not batched:
            raise ValueError("a shared runtime requires batched=True")
        self.model = model
        self.batched = batched
        self.cache = cache
        self.chunk_size = _check_chunk_size(chunk_size)
        self.runtime = runtime
        self.inference = inference
        self._predict = predict_fn(model, inference)
        self.invocations = 0
        self.forwards = 0

    def reset_counters(self) -> None:
        self.invocations = 0
        self.forwards = 0

    def _expected_onehot(self, chars: list) -> np.ndarray:
        indices = [CHAR_TO_INDEX[collapse_char(c)] for c in chars]
        return one_hot(indices, len(CHAR_TO_INDEX))

    def verify_tiles(self, tiles: list, chars: list) -> np.ndarray:
        """Match verdicts for (tile, expected char) pairs."""
        if len(tiles) != len(chars):
            raise ValueError(f"tiles/chars misaligned: {len(tiles)} vs {len(chars)}")
        if not tiles:
            return np.zeros(0, dtype=bool)
        results = np.zeros(len(tiles), dtype=bool)
        pending_idx = []
        keys = []
        for i, (tile, char) in enumerate(zip(tiles, chars)):
            key = None
            if self.cache is not None:
                key = f"text:{region_digest(tile)}:{collapse_char(char)}"
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending_idx.append(i)
            keys.append(key)
        if pending_idx:
            rep_positions, row_of = _dedupe_pending(keys)
            obs = np.stack(
                [np.asarray(tiles[pending_idx[j]], dtype=np.float32) / 255.0 for j in rep_positions]
            )[:, None, :, :]
            exp = self._expected_onehot([chars[pending_idx[j]] for j in rep_positions])
            if self.batched:
                self.invocations += len(rep_positions)
                if self.runtime is not None:
                    verdicts, forwards = self.runtime.predict("text", obs, exp)
                    self.forwards += forwards
                else:
                    verdicts = self._predict(obs, exp, chunk_size=self.chunk_size)
                    self.forwards += forwards_for(len(rep_positions), self.chunk_size)
            else:
                verdicts = np.zeros(len(rep_positions), dtype=bool)
                for j in range(len(rep_positions)):
                    verdicts[j] = bool(self._predict(obs[j : j + 1], exp[j : j + 1])[0])
                    self.invocations += 1
                    self.forwards += 1
            for row, j in enumerate(rep_positions):
                if self.cache is not None and keys[j] is not None:
                    self.cache.put(keys[j], bool(verdicts[row]))
            for j, i in enumerate(pending_idx):
                results[i] = verdicts[row_of[j]]
        return results

    #: Alignment search offsets for cells that fail at the nominal crop.
    #: Viewport detection is integer-precise while rendering stacks place
    #: glyphs with sub-pixel phase, so a failing cell is re-examined at
    #: one-pixel shifts before being reported as tampered.  An attacker
    #: gains nothing: every retry still has to match the expected char.
    RETRY_OFFSETS = (
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
        (2, 0), (-2, 0), (0, 2), (0, -2),
    )

    def verify_cells(
        self,
        frame_pixels: np.ndarray,
        cells: list,
        offset_x: int = 0,
        offset_y: int = 0,
        background: float = 255.0,
    ) -> np.ndarray:
        """Verify manifest character cells against a sampled frame.

        Thin wrapper: builds a single-entry :class:`ValidationPlan` and
        executes it, so per-entry and frame-level callers share one code
        path (nominal round + batched retry rings).
        """
        plan = ValidationPlan()
        plan.add_cells(frame_pixels, cells, offset_x, offset_y, background)
        return self.execute_plan(plan)

    def execute_plan(self, plan: ValidationPlan) -> np.ndarray:
        """Verdicts for every text unit of a plan.

        One vectorized (chunked) nominal round over all queued tiles,
        then — for units that fail and carry a retry hook — one batched
        round per offset ring of :data:`RETRY_OFFSETS` across all failing
        units of the frame at once.
        """
        units = plan.text_units
        verdicts = self.verify_tiles([u.tile for u in units], [u.char for u in units])
        failing = [i for i, v in enumerate(verdicts) if not v and units[i].retry is not None]
        rounds = 0
        for dx, dy in self.RETRY_OFFSETS:
            if not failing:
                break
            rounds += 1
            retry_tiles = [units[i].retry(dx, dy) for i in failing]
            retry = self.verify_tiles(retry_tiles, [units[i].char for i in failing])
            still = []
            for j, i in enumerate(failing):
                if retry[j]:
                    verdicts[i] = True
                else:
                    still.append(i)
            failing = still
        plan.text_retry_rounds = rounds
        return verdicts


class ImageVerifier:
    """Graphics model wrapper: 32x32 observed/expected region matching.

    ``invocations``/``forwards`` follow the same semantics as
    :class:`TextVerifier`: unit inputs fed to the model vs actual model
    forward passes (a flush share when routed through a ``runtime``).
    """

    def __init__(
        self,
        model: MatcherModel,
        batched: bool = False,
        cache=None,
        chunk_size: int | None = PREDICT_CHUNK,
        runtime=None,
        inference: str = "frozen",
    ) -> None:
        if runtime is not None and not batched:
            raise ValueError("a shared runtime requires batched=True")
        self.model = model
        self.batched = batched
        self.cache = cache
        self.chunk_size = _check_chunk_size(chunk_size)
        self.runtime = runtime
        self.inference = inference
        self._predict = predict_fn(model, inference)
        self.invocations = 0
        self.forwards = 0

    def reset_counters(self) -> None:
        self.invocations = 0
        self.forwards = 0

    def verify_pairs(self, pairs: list) -> np.ndarray:
        """Match verdicts for 32x32 ``(observed, expected)`` tile pairs."""
        if not pairs:
            return np.zeros(0, dtype=bool)
        results = np.zeros(len(pairs), dtype=bool)
        pending_idx = []
        keys = []
        for i, (ot, et) in enumerate(pairs):
            key = None
            if self.cache is not None:
                key = f"img:{region_digest(ot)}:{region_digest(et)}"
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending_idx.append(i)
            keys.append(key)
        if pending_idx:
            rep_positions, row_of = _dedupe_pending(keys)
            obs = (
                np.stack([pairs[pending_idx[j]][0] for j in rep_positions]).astype(np.float32)[
                    :, None, :, :
                ]
                / 255.0
            )
            exp = (
                np.stack([pairs[pending_idx[j]][1] for j in rep_positions]).astype(np.float32)[
                    :, None, :, :
                ]
                / 255.0
            )
            if self.batched:
                self.invocations += len(rep_positions)
                if self.runtime is not None:
                    verdicts, forwards = self.runtime.predict("image", obs, exp)
                    self.forwards += forwards
                else:
                    verdicts = self._predict(obs, exp, chunk_size=self.chunk_size)
                    self.forwards += forwards_for(len(rep_positions), self.chunk_size)
            else:
                verdicts = np.zeros(len(rep_positions), dtype=bool)
                for j in range(len(rep_positions)):
                    verdicts[j] = bool(self._predict(obs[j : j + 1], exp[j : j + 1])[0])
                    self.invocations += 1
                    self.forwards += 1
            for row, j in enumerate(rep_positions):
                if self.cache is not None and keys[j] is not None:
                    self.cache.put(keys[j], bool(verdicts[row]))
            for j, i in enumerate(pending_idx):
                results[i] = verdicts[row_of[j]]
        return results

    def verify_region(self, observed: np.ndarray, expected: np.ndarray, background: float = 255.0) -> bool:
        """Match an observed region against its expected appearance.

        Thin wrapper over a single-region :class:`ValidationPlan`: both
        rasters are tiled into 32x32 unit inputs and the region matches
        only if every tile pair matches.
        """
        observed = np.asarray(observed, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if observed.shape != expected.shape:
            return False
        plan = ValidationPlan()
        group = plan.add_region(observed, expected, background)
        return self.execute_plan(plan)[group]

    def execute_plan(self, plan: ValidationPlan) -> list:
        """Per-group verdicts for every image region of a plan.

        All tile pairs of all regions go through one vectorized (chunked)
        :meth:`verify_pairs` call; each group's verdict is the AND over
        its tile range.
        """
        verdicts = self.verify_pairs(plan.image_pairs)
        return [
            bool(np.all(verdicts[start:stop])) if stop > start else True
            for start, stop in plan.image_groups
        ]
