"""Pooled plan-transport buffers: zero-copy from collect to forward.

PR 4's frozen engine made the *forward* allocation-free via per-shape
:class:`~repro.nn.infer.Workspace` arenas, but everything upstream still
materialized a fresh ndarray per unit input: the collect pass built
Python lists of per-cell crops, the verifiers re-stacked them per chunk,
and the runtime flush re-gathered them with ``np.concatenate``.  This
module extends the same arena discipline upstream of the forward:

* :class:`PlanBuffers` is one owner's pool of capacity-grown transport
  buffers keyed by role (``"text-tiles"``, ``"image-obs"``, flush
  gathers, retry rings).  A buffer is allocated once, grows
  geometrically when a frame needs more rows, and is reused verbatim for
  every subsequent frame — steady-state validation writes crops straight
  into resident memory.
* Pools are **thread-confined by ownership**, exactly like the frozen
  engine's arenas: a :class:`~repro.core.verifiers.ValidationPlan` owns
  the pool its session thread collects into, while execute-side scratch
  (pending gathers, one-hot rows, retry rings, the micro-batcher's flush
  buffers) comes from :func:`thread_pool` — a thread-local pool, so a
  flusher thread and each session thread each write into their own
  memory and no buffer is ever shared across concurrently-running
  threads.
* Pools are **LRU-bounded** by distinct buffer key (``max_shapes``,
  mirroring :data:`repro.nn.infer.DEFAULT_MAX_SHAPES` semantics), so a
  long-lived thread that sees many one-off shapes cannot accumulate
  unbounded buffer memory.

The zero-copy guarantee is enforced statically: witness-lint's
``hot-alloc`` rule pins the buffer-writing collect and flush functions
(see ``AnalysisConfig.hot_functions``), and :meth:`PlanBuffers.reserve`
is their designated allocation point.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

#: Canonical transport dtype: unit inputs are written as float32 at
#: extraction time so the verifier's normalization boundary is a pure
#: in-place divide and the frozen engine ingests views without a cast.
PLAN_DTYPE = np.float32

#: Default LRU bound on distinct buffer keys per pool.  Transport uses a
#: handful of stable roles, so this is generous; it exists to bound
#: memory if a caller keys buffers by a high-cardinality attribute.
DEFAULT_MAX_SHAPES = 16

#: witness-san seam: :func:`repro.analysis.sanitizer.enable` swaps the
#: active :class:`~repro.analysis.sanitizer.SanitizerState` in here so
#: ``reserve`` can ownership-check pooled checkouts.  ``None`` when
#: disarmed — one ``is None`` test on the hot path, the same pattern as
#: ``obs.NULL_SPAN`` and the fault injector's disarmed seams.
_SAN = None


class PlanBuffers:
    """One owner's pool of capacity-grown, reusable transport buffers.

    A pool belongs to exactly one owner — a :class:`ValidationPlan` (and
    therefore the session thread driving it) or one executing thread via
    :func:`thread_pool` — so no reservation ever races.  ``reserve``
    returns the *backing* array for a key; callers slice ``[:n]`` and
    write rows in place.
    """

    __slots__ = ("max_shapes", "_buffers", "hits", "allocations", "evictions", "thread", "owner_ident")

    def __init__(self, max_shapes: int = DEFAULT_MAX_SHAPES) -> None:
        if max_shapes < 1:
            raise ValueError(f"max_shapes must be >= 1, got {max_shapes}")
        self.max_shapes = max_shapes
        self._buffers: OrderedDict = OrderedDict()
        self.hits = 0
        self.allocations = 0
        self.evictions = 0
        self.thread = threading.current_thread().name
        #: witness-san ownership tag: thread id of the first reserving
        #: thread (claimed lazily — a plan's pool belongs to the session
        #: thread *driving* it, which may not be the creating thread).
        self.owner_ident = None

    def reserve(self, key, n: int, trailing: tuple = (), dtype=PLAN_DTYPE) -> np.ndarray:
        """The backing array for ``key``: shape ``(capacity, *trailing)``
        with ``capacity >= n``, allocated once and grown geometrically.

        Rows already written are preserved across growth (collect appends
        entry by entry, so earlier entries' crops must survive a
        mid-frame grow).  Changing ``trailing`` or ``dtype`` under the
        same key replaces the buffer.  Reservation counts as use for the
        LRU bound.
        """
        if _SAN is not None:
            _SAN.note_pool_use(self, "planbuf")
        trailing = tuple(trailing)
        buf = self._buffers.get(key)
        if buf is not None and buf.shape[1:] == trailing and buf.dtype == dtype:
            self._buffers.move_to_end(key)
            if buf.shape[0] >= n:
                self.hits += 1
                return buf
            grown = np.zeros((max(n, 2 * buf.shape[0]),) + trailing, dtype=dtype)
            grown[: buf.shape[0]] = buf
            self._buffers[key] = grown
            self.allocations += 1
            return grown
        fresh = np.zeros((max(n, 1),) + trailing, dtype=dtype)
        self._buffers[key] = fresh
        self._buffers.move_to_end(key)
        self.allocations += 1
        if len(self._buffers) > self.max_shapes:
            self._buffers.popitem(last=False)
            self.evictions += 1
        return fresh

    def release_ownership(self) -> None:
        """witness-san frame boundary: un-claim this pool.

        A plan-owned pool legitimately *migrates* between threads frame
        to frame (a session set up on one thread may be driven by
        another), but must never be used by two threads within one
        frame.  ``ValidationPlan.reset`` calls this at every frame
        start, so the frame's driving thread re-claims the pool on its
        first reservation and any other thread reserving mid-frame is a
        confinement violation.  ``thread_pool()`` pools are pinned at
        creation instead and never released — for them *any* foreign
        reservation is a violation.
        """
        self.owner_ident = None

    def peek(self, key) -> np.ndarray | None:
        """The current backing for ``key`` (no LRU touch); None if absent."""
        return self._buffers.get(key)

    def stats(self) -> dict:
        return {
            "thread": self.thread,
            "keys": len(self._buffers),
            "hits": self.hits,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "nbytes": sum(buf.nbytes for buf in self._buffers.values()),
        }


class _PoolSet:
    """Thread-local pools plus a registry so stats can see all threads.

    Mirrors :class:`repro.nn.infer._ArenaSet`: registry entries pair each
    pool with its owning thread, and dead threads' entries are pruned
    whenever a new thread registers, so thread churn (short-lived fleet
    workers) does not accumulate buffer memory.
    """

    def __init__(self, max_shapes: int) -> None:
        self.max_shapes = max_shapes
        self._tls = threading.local()
        self._entries: list = []  # (thread, pool)
        self._lock = threading.Lock()

    def pool(self) -> PlanBuffers:
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = PlanBuffers(self.max_shapes)
            # Thread-local by construction, so pin ownership for good:
            # witness-san treats any foreign reservation as a violation
            # (unlike plan-owned pools, which migrate at frame bounds).
            pool.owner_ident = threading.get_ident()
            self._tls.pool = pool
            with self._lock:
                self._entries = [(t, p) for t, p in self._entries if t.is_alive()]
                self._entries.append((threading.current_thread(), pool))
        return pool

    def stats(self) -> list:
        with self._lock:
            return [pool.stats() for _thread, pool in self._entries]


#: The process-wide execute-side pool set (verifier pending gathers,
#: retry rings, flush buffers).  Collect-side pools are owned per plan.
_EXEC_POOLS = _PoolSet(DEFAULT_MAX_SHAPES)


def thread_pool() -> PlanBuffers:
    """The calling thread's execute-side :class:`PlanBuffers` pool."""
    return _EXEC_POOLS.pool()


def pool_stats() -> list:
    """Per-thread stats for every live execute-side pool."""
    return _EXEC_POOLS.stats()


def pool_totals() -> dict:
    """Execute-side pool stats aggregated across live threads.

    The telemetry hub's summary view of :func:`pool_stats` (the
    per-thread breakdown stays available for capacity debugging).
    """
    stats = pool_stats()
    totals = {"pools": len(stats), "keys": 0, "hits": 0, "allocations": 0, "evictions": 0, "nbytes": 0}
    for entry in stats:
        for key in ("keys", "hits", "allocations", "evictions", "nbytes"):
            totals[key] += entry[key]
    return totals
