"""Point-of-focus extraction and consistency checks (paper §III-C2, §IV-A).

vWitness locates POFs purely from pixel information: the focus outline
(a mid-gray ring around the focused field), the input caret (a thin dark
vertical bar), and the multi-character selection highlight (a light band
behind text).  Because the untrusted client renders these, an attacker can
forge them — the consistency rules catch forgeries:

1. **Number of instances** — at most one of each POF kind on a frame.
2. **Same-field logic** — outline, highlight and caret must all reside in
   the same input field.
3. **Mutual exclusivity** — caret and selection highlight never coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vision.components import Rect, connected_components, find_rectangles
from repro.web.render import DEFAULT_POF, POFStyle

#: Intensity tolerance when matching POF bands (absorbs stack noise).
BAND_TOL = 10.0


@dataclass
class POFObservation:
    """All POF instances found on one frame (frame coordinates)."""

    outlines: list = field(default_factory=list)
    carets: list = field(default_factory=list)
    highlights: list = field(default_factory=list)

    @property
    def present(self) -> bool:
        return bool(self.outlines or self.carets or self.highlights)

    def focused_rect(self) -> Rect | None:
        """The field the user is focused on, if a focus outline exists."""
        return self.outlines[0] if self.outlines else None


def _band_mask(pixels: np.ndarray, intensity: float, tol: float = BAND_TOL) -> np.ndarray:
    return np.abs(pixels - intensity) <= tol


def _bright_neighbours(frame_pixels: np.ndarray, rect: Rect, threshold: float = 150.0) -> bool:
    """True when the columns flanking ``rect`` are bright (background-ish).

    A real caret stands alone against the field background; the vertical
    edge of a dark glyph stroke has ink on one side.  This test is what
    keeps glyph anti-aliasing ramps from masquerading as carets.
    """
    h, w = frame_pixels.shape
    left = frame_pixels[rect.y : rect.y2, max(rect.x - 2, 0) : rect.x]
    right = frame_pixels[rect.y : rect.y2, rect.x2 : min(rect.x2 + 2, w)]
    # A flank clipped away by the frame edge carries no evidence either
    # way: judge on the flanks that exist, so an honest caret within 2px
    # of the frame's left/right edge is not rejected out of hand.
    flanks = [f for f in (left, right) if f.size]
    if not flanks:
        return False
    return all(float(f.mean()) > threshold for f in flanks)


def extract_pofs(
    frame_pixels: np.ndarray,
    style: POFStyle = DEFAULT_POF,
    input_rects: list | None = None,
) -> POFObservation:
    """Locate focus outlines, carets and selection highlights in a frame.

    ``input_rects`` (frame coordinates) restricts caret/highlight search to
    expected input fields — vWitness only interprets POFs in fields, and a
    cue drawn anywhere else is simply not a POF (forged ones inside fields
    are handled by the consistency rules).
    """
    obs = POFObservation()

    # Focus outline: a hollow rectangle in the outline intensity band,
    # larger than any glyph (fields are tens of pixels tall and wide).
    outline_mask = _band_mask(frame_pixels, style.outline_intensity)
    obs.outlines = find_rectangles(
        outline_mask, min_width=30, min_height=16, max_fill=0.5, min_border_cover=0.7
    )

    def in_search_area(rect: Rect) -> bool:
        if input_rects is None:
            return True
        return any(field.expanded(4).intersects(rect) for field in input_rects)

    # Selection highlight first: a solid light band big enough to back
    # at least one character.
    highlight_mask = _band_mask(frame_pixels, style.highlight_intensity, tol=6.0)
    for rect in connected_components(highlight_mask):
        if rect.w >= 6 and rect.h >= 8 and in_search_area(rect):
            sub = highlight_mask[rect.y : rect.y2, rect.x : rect.x2]
            if sub.mean() > 0.5:
                obs.highlights.append(rect)

    # Caret: a thin, tall, nearly solid vertical bar in the caret band,
    # free-standing against the bright field background.  Candidates
    # inside a selection highlight are text strokes over the highlight
    # (thin glyph stems dim to caret-band intensities there), not carets —
    # browsers hide the caret while a selection is showing.  The height
    # floor is what keeps straight glyph stems ('l', '1', '|') out: on
    # some stacks their ink lands in the caret band and their flanks are
    # bright inter-glyph gaps, but they never reach caret height.
    caret_mask = _band_mask(frame_pixels, style.caret_intensity)
    for rect in connected_components(caret_mask):
        if rect.w <= style.caret_width + 2 and rect.h >= style.caret_min_height and in_search_area(rect):
            if any(h.expanded(2).intersects(rect) for h in obs.highlights):
                continue
            sub = caret_mask[rect.y : rect.y2, rect.x : rect.x2]
            if sub.mean() > 0.85 and _bright_neighbours(frame_pixels, rect, threshold=225.0):
                obs.carets.append(rect)

    return obs


def check_pof_consistency(obs: POFObservation, input_rects: list) -> list:
    """Apply the three consistency rules; returns violation strings.

    ``input_rects`` are the frame-coordinate rectangles of the VSPEC's
    input elements — every POF must lie within some expected input field
    ("observed input elements must fall in the bounding rectangle of
    expected input elements").
    """
    violations = []

    if len(obs.outlines) > 1:
        violations.append(f"{len(obs.outlines)} focus outlines present (max 1)")
    if len(obs.carets) > 1:
        violations.append(f"{len(obs.carets)} carets present (max 1)")
    if len(obs.highlights) > 1:
        violations.append(f"{len(obs.highlights)} selection highlights present (max 1)")

    if obs.carets and obs.highlights:
        violations.append("caret and selection highlight present simultaneously")

    def owner_of_outline(rect: Rect) -> Rect | None:
        # A focus outline wraps the whole focusable element (field plus
        # label), so ownership is by intersection — and an outline that
        # touches more than one declared field is itself suspicious.
        owners = [f for f in input_rects if f.expanded(8).intersects(rect)]
        return owners[0] if len(owners) == 1 else None

    def owner_of_inner(rect: Rect) -> Rect | None:
        # Carets and highlights live *inside* the field.
        for input_rect in input_rects:
            if input_rect.expanded(6).contains(rect):
                return input_rect
        return None

    fields = set()
    for rect in obs.outlines:
        owner = owner_of_outline(rect)
        if owner is None:
            violations.append(
                f"outline at {rect.as_tuple()} does not wrap exactly one expected input field"
            )
        else:
            fields.add(owner.as_tuple())
    for kind, rects in (("caret", obs.carets), ("highlight", obs.highlights)):
        for rect in rects:
            owner = owner_of_inner(rect)
            if owner is None:
                violations.append(f"{kind} at {rect.as_tuple()} outside all expected input fields")
            else:
                fields.add(owner.as_tuple())
    if len(fields) > 1:
        violations.append(f"POFs span {len(fields)} different fields (same-field rule)")

    return violations


def mask_pofs(frame_pixels: np.ndarray, obs: POFObservation, style: POFStyle = DEFAULT_POF, field_background: float = 252.0, page_background: float = 255.0) -> np.ndarray:
    """Remove POF pixels so content verification sees clean element pixels.

    vWitness knows exactly where the POFs are (it just extracted them), so
    it can subtract them before invoking the CNN verifiers: outline pixels
    revert to the page background, caret and highlight pixels to the field
    background.
    """
    out = frame_pixels.copy()
    for rect in obs.outlines:
        # Only the ring itself is POF pixels: wipe the border band of the
        # bounding box, not its interior — element content inside the
        # focused region (e.g. radio option labels) may legitimately have
        # pixels in the outline intensity band (glyph anti-aliasing).
        margin = style.outline_thickness + 1
        region = out[rect.y : rect.y2, rect.x : rect.x2]
        band = np.abs(region - style.outline_intensity) <= BAND_TOL
        ring = np.ones_like(band)
        if rect.h > 2 * margin and rect.w > 2 * margin:
            ring[margin:-margin, margin:-margin] = False
        region[band & ring] = page_background
    for rect in obs.carets:
        out[rect.y : rect.y2, rect.x : rect.x2] = field_background
    for rect in obs.highlights:
        region = out[rect.y : rect.y2, rect.x : rect.x2]
        band = np.abs(region - style.highlight_intensity) <= 6.0
        region[band] = field_background
    return out
