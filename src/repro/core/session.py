"""The vWitness session orchestrator (paper §III-B workflow).

``VWitness`` wires the sampler, POF extractor, display validator,
interaction tracker and submission validator behind the three extension
APIs (``begin_session`` / ``receive_hint`` / ``end_session``).  It
registers itself as a clock observer, so sampling happens whenever the
virtual clock passes a scheduled instant — asynchronously to, and
invisible from, guest activity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.caches import DifferentialDetector, DigestCache
from repro.core.display import DisplayResult, DisplayValidator
from repro.core.interaction import InteractionTracker, Violation
from repro.core.pof import check_pof_consistency, extract_pofs
from repro.core.sampler import ScreenshotSampler
from repro.core.submission import CertificationDecision, SubmissionValidator
from repro.core.timing import SessionTiming
from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.crypto.ca import CertificateAuthority
from repro.crypto.keys import MeasuredState, SealedSigningKey, generate_signing_key
from repro.vision.components import Rect
from repro.vspec.spec import VSpec
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF, POFStyle


@dataclass
class SessionReport:
    """Everything a session recorded (exposed for tests and benches)."""

    display_ok: bool = True
    frame_results: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    timing: SessionTiming = field(default_factory=SessionTiming)
    frames_sampled: int = 0
    frames_skipped: int = 0
    text_invocations: int = 0
    image_invocations: int = 0

    @property
    def all_failures(self) -> list:
        return [f for r in self.frame_results for f in r.failures]


def install_vwitness(machine: Machine, ca: CertificateAuthority, subject: str = "client-1", **kwargs) -> "VWitness":
    """The compromise-free initial setup of §III-A.

    Generates ``K_pri``, seals it to the measured trusted stack, and has
    the CA certify ``K_pub``.
    """
    state = MeasuredState.measure(
        {
            "hypervisor": b"xen-4.17-analogue",
            "vwitness-core": b"repro.core-v1",
            "text-model": b"text-verifier-weights",
            "image-model": b"image-verifier-weights",
        }
    )
    key = generate_signing_key()
    sealed = SealedSigningKey(key, state)
    certificate = ca.issue(subject, key.public_key())
    return VWitness(machine, sealed_key=sealed, measured_state=state, certificate=certificate, **kwargs)


class VWitness:
    """The trusted witness component running in dom0."""

    def __init__(
        self,
        machine: Machine,
        sealed_key: SealedSigningKey,
        measured_state: MeasuredState,
        certificate,
        text_model=None,
        image_model=None,
        batched: bool = False,
        caching: bool = True,
        sampler_seed: int = 0,
        periodic_sampling: bool = False,
        pof_style: POFStyle = DEFAULT_POF,
        check_background: bool = True,
    ) -> None:
        self.machine = machine
        self.submission = SubmissionValidator(sealed_key, measured_state, certificate)
        if text_model is None or image_model is None:
            from repro.nn.zoo import get_image_model, get_text_model  # lazy: trains on first use

            text_model = text_model or get_text_model("base")
            image_model = image_model or get_image_model()
        self.text_model = text_model
        self.image_model = image_model
        self.batched = batched
        self.caching = caching
        self.sampler_seed = sampler_seed
        self.periodic_sampling = periodic_sampling
        self.pof_style = pof_style
        self.check_background = check_background

        self.vspec: VSpec | None = None
        self.report = SessionReport()
        self._sampler: ScreenshotSampler | None = None
        self._display: DisplayValidator | None = None
        self._tracker: InteractionTracker | None = None
        self._text_verifier: TextVerifier | None = None
        self._image_verifier: ImageVerifier | None = None
        self._diff: DifferentialDetector | None = None
        self._last_sample_ms = 0.0
        self._last_offset = 0
        self._observing = False

    # -- extension-facing API ------------------------------------------------

    def begin_session(self, vspec: VSpec) -> None:
        """Start witnessing (the ``vWitness_begin`` API)."""
        if self.vspec is not None:
            raise RuntimeError("a session is already active")
        t0 = time.perf_counter()
        self.vspec = vspec
        self.report = SessionReport()
        cache = DigestCache() if self.caching else None
        self._text_verifier = TextVerifier(self.text_model, batched=self.batched, cache=cache)
        self._image_verifier = ImageVerifier(self.image_model, batched=self.batched, cache=cache)
        self._display = DisplayValidator(
            vspec,
            self._text_verifier,
            self._image_verifier,
            pof_style=self.pof_style,
            check_background=self.check_background,
        )
        self._tracker = InteractionTracker(vspec, self.machine, self._text_verifier, self._image_verifier)
        self._diff = DifferentialDetector() if self.caching else None
        now = self.machine.clock.now()
        self._last_sample_ms = now
        self._sampler = ScreenshotSampler(now, seed=self.sampler_seed, periodic=self.periodic_sampling)
        if not self._observing:
            self.machine.clock.add_observer(self._on_clock)
            self._observing = True
        self.report.timing.t_init = time.perf_counter() - t0
        # Clean-start checks (§V-A): sample immediately — the viewport must
        # be at the top and all inputs in their initial (empty) state.
        first = self._process_sample(now)
        if first.offset_y != 0:
            self.report.display_ok = False
            self.report.violations.append(
                Violation("clean-start", f"session began with viewport at offset {first.offset_y}")
            )

    def receive_hint(self, hint) -> None:
        """Queue an input hint and sample the display immediately.

        Hints arrive through an explicit API call, so vWitness reacts by
        taking an event-driven sample on top of the random schedule: the
        POF and the hinted value are verified against the display at the
        moment of the hint.  Extra samples only add observations — the
        random schedule (the TOCTOU defense) is unaffected.
        """
        if self._tracker is None:
            raise RuntimeError("no active session")
        self._tracker.receive_hint(hint)
        self._process_sample(self.machine.clock.now())

    def end_session(self, request_body: dict) -> CertificationDecision:
        """Validate the submission and certify (the ``vWitness_end`` API)."""
        if self.vspec is None or self._tracker is None or self._sampler is None:
            raise RuntimeError("no active session")
        # Final sample: whatever is on screen at submission time counts.
        self._process_sample(self.machine.clock.now())
        t0 = time.perf_counter()
        decision = self.submission.certify(
            self.vspec,
            request_body,
            dict(self._tracker.tracked),
            self.report.violations + self._tracker.violations,
            self.report.display_ok,
        )
        self.report.timing.t_request = time.perf_counter() - t0
        self.machine.clock.remove_observer(self._on_clock)
        self._observing = False
        self.vspec = None
        return decision

    @property
    def tracked_inputs(self) -> dict:
        if self._tracker is None:
            raise RuntimeError("no active session")
        return dict(self._tracker.tracked)

    # -- sampling ----------------------------------------------------------------

    def _on_clock(self, now_ms: float) -> None:
        if self._sampler is None:
            return
        if self._sampler.due(now_ms):
            self._process_sample(now_ms)

    def _process_sample(self, now_ms: float) -> DisplayResult:
        """One sampled frame through the full validation pipeline."""
        assert self._display is not None and self._tracker is not None
        t0 = time.perf_counter()
        frame = self.machine.sample_framebuffer()
        pixels = frame.pixels

        changed = self._diff.changed(pixels) if self._diff is not None else None
        nothing_changed = changed is not None and len(changed) == 0

        if nothing_changed and not self._tracker.has_pending:
            # Frame-cache fast path: identical frame, nothing pending.
            result = DisplayResult(ok=True, offset_y=self._last_offset, skipped_unchanged=True)
            self.report.frames_skipped += 1
        else:
            try:
                offset, score = self._display.locate_viewport(pixels)
            except ValueError as exc:
                result = DisplayResult(ok=False)
                self.report.display_ok = False
                self.report.violations.append(Violation("viewport", str(exc)))
                self._finish_frame(result, now_ms, t0)
                return result
            input_rects_frame = [
                Rect(e.rect.x, e.rect.y - offset, e.rect.w, e.rect.h)
                for e in self.vspec.input_entries()
                if e.rect.y2 - offset > 0 and e.rect.y - offset < pixels.shape[0]
            ]
            pof_obs = extract_pofs(pixels, self.pof_style, input_rects=input_rects_frame)
            if pof_obs.present:
                for violation in check_pof_consistency(pof_obs, input_rects_frame):
                    self.report.violations.append(Violation("pof-consistency", violation))
            self._tracker.on_frame(
                pixels, offset, pof_obs, self._last_sample_ms, now_ms
            )
            result = self._display.validate(
                pixels,
                tracked_inputs=self._tracker.tracked,
                pof_obs=pof_obs,
                changed_rects=changed,
                viewport=(offset, score),
            )
            self._last_offset = result.offset_y
            if not result.ok:
                self.report.display_ok = False

        self._finish_frame(result, now_ms, t0)
        return result

    def _finish_frame(self, result: DisplayResult, now_ms: float, t0: float) -> None:
        elapsed = time.perf_counter() - t0
        self.report.frame_results.append(result)
        self.report.frames_sampled += 1
        self.report.timing.frame_times.append(elapsed)
        self.report.timing.frame_sample_times_ms.append(now_ms)
        if self._text_verifier is not None:
            self.report.text_invocations = self._text_verifier.invocations
        if self._image_verifier is not None:
            self.report.image_invocations = self._image_verifier.invocations
        self._last_sample_ms = now_ms
        if self._sampler is not None:
            self._sampler.schedule_next(now_ms)
