"""Backward-compat single-session witness API (paper §III-B workflow).

The orchestration engine lives in :mod:`repro.core.service` now:
:class:`~repro.core.service.WitnessService` owns the heavyweight
resources and vends per-guest :class:`~repro.core.service.WitnessSession`
handles.  This module keeps the original single-session surface —
``VWitness`` and ``install_vwitness`` — as thin shims so every
pre-existing call site works unchanged: a ``VWitness`` is a dedicated
one-machine service plus the session handle currently open on it.
"""

from __future__ import annotations

from repro.core.service import (
    SessionReport,
    TRUSTED_STACK,
    WitnessConfig,
    WitnessService,
    WitnessSession,
)
from repro.core.submission import CertificationDecision
from repro.crypto.ca import CertificateAuthority
from repro.crypto.keys import MeasuredState, SealedSigningKey, generate_signing_key
from repro.vspec.spec import VSpec
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF, POFStyle

__all__ = ["SessionReport", "VWitness", "install_vwitness"]


def install_vwitness(machine: Machine, ca: CertificateAuthority, subject: str = "client-1", **kwargs) -> "VWitness":
    """The compromise-free initial setup of §III-A.

    Generates ``K_pri``, seals it to the measured trusted stack, and has
    the CA certify ``K_pub``.
    """
    state = MeasuredState.measure(dict(TRUSTED_STACK))
    key = generate_signing_key()
    sealed = SealedSigningKey(key, state)
    certificate = ca.issue(subject, key.public_key())
    return VWitness(machine, sealed_key=sealed, measured_state=state, certificate=certificate, **kwargs)


class VWitness:
    """The trusted witness component running in dom0 (compat shim).

    Delegates to a private single-machine :class:`WitnessService`; the
    kwargs of the historical constructor map onto a
    :class:`WitnessConfig`.  ``batched=True`` enables frame-level plan
    batching (one vectorized forward per model kind per frame, chunked at
    ``predict_chunk`` unit inputs).  New code should use the service API
    directly — it shares models, key material and caches across guests.
    """

    def __init__(
        self,
        machine: Machine,
        sealed_key: SealedSigningKey,
        measured_state: MeasuredState,
        certificate,
        text_model=None,
        image_model=None,
        batched: bool = False,
        caching: bool = True,
        predict_chunk: int | None = 512,
        sampler_seed: int = 0,
        periodic_sampling: bool = False,
        pof_style: POFStyle = DEFAULT_POF,
        check_background: bool = True,
        tracing: bool = False,
    ) -> None:
        config = WitnessConfig(
            batched=batched,
            caching=caching,
            predict_chunk=predict_chunk,
            sampler_seed=sampler_seed,
            periodic_sampling=periodic_sampling,
            pof_style=pof_style,
            check_background=check_background,
            tracing=tracing,
        )
        self.machine = machine
        self.service = WitnessService(
            config=config,
            text_model=text_model,
            image_model=image_model,
            sealed_key=sealed_key,
            measured_state=measured_state,
            certificate=certificate,
        )
        self._session: WitnessSession | None = None
        self._last_report = SessionReport()

    # -- compat attribute surface ------------------------------------------

    @property
    def submission(self):
        return self.service.submission

    @property
    def text_model(self):
        return self.service.text_model

    @property
    def image_model(self):
        return self.service.image_model

    @property
    def vspec(self) -> VSpec | None:
        return self._session.vspec if self._session is not None else None

    @property
    def report(self) -> SessionReport:
        """The active session's report, or the last ended session's."""
        if self._session is not None:
            return self._session.report
        return self._last_report

    # -- extension-facing API ------------------------------------------------

    def begin_session(self, vspec: VSpec) -> None:
        """Start witnessing (the ``vWitness_begin`` API)."""
        if self._session is not None and self._session.active:
            raise RuntimeError("a session is already active")
        # Pin the configured seed: every session of one VWitness samples on
        # the same schedule, exactly like the historical single-session API.
        self._session = self.service.open_session(
            self.machine, sampler_seed=self.service.config.sampler_seed
        )
        self._session.begin_session(vspec)

    def receive_hint(self, hint) -> None:
        """Queue an input hint and sample the display immediately."""
        if self._session is None or not self._session.active:
            raise RuntimeError("no active session")
        self._session.receive_hint(hint)

    def end_session(self, request_body: dict) -> CertificationDecision:
        """Validate the submission and certify (the ``vWitness_end`` API).

        Teardown hygiene: the per-session sampler/tracker/display state is
        dropped with the session handle, so a second ``end_session`` (or a
        late ``receive_hint``) fails loudly instead of re-certifying stale
        state.
        """
        if self._session is None:
            raise RuntimeError(
                "no active session: end_session may only follow begin_session"
            )
        session = self._session
        try:
            decision = session.end_session(request_body)
        finally:
            if not session.active:
                self._last_report = session.report
                self._session = None
        return decision

    @property
    def tracked_inputs(self) -> dict:
        if self._session is None:
            raise RuntimeError("no active session")
        return self._session.tracked_inputs

    def telemetry(self):
        """The wrapped service's federated telemetry snapshot."""
        return self.service.telemetry()
