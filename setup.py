"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e .` falls back to `setup.py develop`, which needs this file.
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
