"""Ablations of vWitness's design choices (DESIGN.md §5).

* Random vs periodic sampling against TOCTOU display flipping.
* Differential detection + caching vs full re-validation per frame.
"""

import numpy as np

from benchmarks.conftest import record_result


def test_ablation_sampling_vs_toctou(benchmark, scale, text_model, image_model):
    """Detection rate of display flipping: random vs periodic sampling."""
    from repro.attacks.tamper import overlay_rectangle
    from repro.attacks.toctou import DisplayFlipper
    from tests.conftest import TransferScenario

    def run_one(periodic: bool, seed: int) -> bool:
        scenario = TransferScenario(
            text_model, image_model, periodic_sampling=periodic, sampler_seed=seed
        )
        scenario.begin()
        honest = scenario.machine.sample_framebuffer().pixels.copy()
        overlay_rectangle(scenario.machine, 24, 44, 400, 30, color=252.0, text="Attacker text")
        tampered = scenario.machine.sample_framebuffer().pixels.copy()
        scenario.machine.framebuffer_handle().pixels[...] = honest
        # Attacker synchronized to the periodic 250ms grid: tampered content
        # shows only inside windows that avoid multiples of 250ms.
        flipper = DisplayFlipper(
            scenario.machine, honest, tampered,
            period_ms=250.0, tampered_fraction=0.4, offset_ms=-145.0,
        )
        flipper.drive(total_ms=2500.0)
        scenario.machine.framebuffer_handle().pixels[...] = honest
        decision = scenario.end(scenario.submit_body())
        return not decision.certified  # True = attack detected

    def run():
        trials = 6
        random_detect = sum(run_one(periodic=False, seed=s) for s in range(trials))
        periodic_detect = sum(run_one(periodic=True, seed=s) for s in range(trials))
        return trials, random_detect, periodic_detect

    trials, random_detect, periodic_detect = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — sampling schedule vs TOCTOU display flipping",
        "",
        f"random sampling:   detected {random_detect}/{trials} synchronized flip attacks",
        f"periodic sampling: detected {periodic_detect}/{trials}",
        "",
        "Shape (paper §III-C): randomized sampling makes the flip timing",
        "unpredictable; a fixed 250ms period can be dodged entirely by a",
        "synchronized attacker.",
    ]
    record_result("ablation_sampling", "\n".join(lines))
    assert random_detect > periodic_detect


def test_ablation_caching(benchmark, scale, text_model, image_model):
    """Differential detection + caches vs full re-validation per frame."""
    from benchmarks.harness import run_interactive_session

    def run():
        out = {}
        for label, caching in (("cached", True), ("uncached", False)):
            subsequent = []
            for seed in range(3):
                decision, report, _ = run_interactive_session(
                    seed, text_model, image_model, batched=True, caching=caching
                )
                assert decision.certified, decision.reason
                subsequent.extend(report.timing.subsequent_frame_times)
            out[label] = float(np.mean(subsequent))
        return out

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = means["uncached"] / max(means["cached"], 1e-9)
    lines = [
        "Ablation — differential detection + caching (paper §IV-A)",
        "",
        f"subsequent-frame mean: cached {means['cached']:.3f}s, "
        f"uncached {means['uncached']:.3f}s ({speedup:.1f}x)",
        "",
        "Shape: caching + differential detection make subsequent frames",
        "substantially cheaper, which is what turns concurrent validation",
        "into a ~0.2s request delay for long sessions (Table IX).",
    ]
    record_result("ablation_caching", "\n".join(lines))
    assert means["cached"] < means["uncached"]
