"""Scenario-diversity soak: every archetype x script x engine combination.

Drives the default scenario matrix (six page archetypes, four user
scripts — see ``repro.scenarios``) through all six engine combinations
(batched x sequential planning, shared x inline execution, frozen x
training inference) and asserts **zero** decision/violation divergences,
zero crashes, and zero script-contract breaches.  Records sessions/sec
and the divergence count into ``bench_summary.json``.

The soak runs **traced**: span tracing is on for every combo, which both
exercises the tracing-changes-nothing contract at soak scale (a traced
fingerprint diverging from an untraced expectation would surface here)
and yields per-stage latency percentiles for ``bench_summary.json``.
Any divergence ships its flight-recorder evidence into the benchmark
results directory.

The suite's ``--executor``/``--inference`` knobs pick the *baseline*
combination every other engine is compared against.
"""

from __future__ import annotations

import os

from benchmarks.conftest import record_metrics, record_result


def test_soak_scenario_diversity(scale, text_model, image_model, executor_mode, inference_mode):
    from repro.scenarios import baseline_combo, default_soak_specs, run_soak

    specs = default_soak_specs()
    seeds = (0, 1) if scale["name"] == "paper" else None
    flight_dir = os.path.join(os.path.dirname(__file__), "results", "flight")
    result = run_soak(
        specs,
        seeds=seeds,
        baseline=baseline_combo(executor_mode, inference_mode),
        text_model=text_model,
        image_model=image_model,
        tracing=True,
        flight_dir=flight_dir,
    )

    content = result.summary()
    record_result("soak", content)
    record_metrics(
        "soak",
        {
            "scenarios": result.scenarios,
            "archetypes": len(result.archetypes),
            "combos": len(result.combos),
            "baseline": result.baseline,
            "sessions_total": result.sessions_total,
            "frames_total": result.frames_total,
            "certified_total": result.certified_total,
            "divergences": len(result.divergences),
            "crashes": len(result.crashes),
            "expectation_failures": len(result.expectation_failures),
            "sessions_per_second": round(result.sessions_per_second, 3),
            "forwards_per_combo": result.forwards_per_combo,
            # Baseline-combo per-stage latency percentiles (ms) from the
            # traced run: {stage: {count, mean, p50, p95, p99}}.
            "span_percentiles_ms": {
                stage: {k: round(v, 4) for k, v in snap.items()}
                for stage, snap in result.span_percentiles.items()
            },
            "flight_artifacts": result.flight_artifacts,
        },
    )

    assert result.sessions_total >= 64, content
    assert len(result.archetypes) >= 6, content
    assert result.ok, content
