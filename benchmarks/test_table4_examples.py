"""Table IV: successful adversarial examples against the hardened model.

The paper exhibits examples produced by MOM and APGD (L2, eps 1/2/3)
against the t6 high-threshold model and argues their perturbations are
human-perceptible on typeset text.  We regenerate the exhibit: for each
(attack, epsilon) cell, attack until an example succeeds, then record the
perturbation's visibility statistics.
"""

import numpy as np

from benchmarks.conftest import record_result


def test_table4_adversarial_exhibit(benchmark, scale):
    from repro.adversarial.attacks import AttackConfig, matcher_objective, run_attack
    from repro.adversarial.defenses import perturbation_visibility
    from repro.nn.data import text_dataset
    from repro.nn.zoo import get_text_model
    from repro.raster.fonts import font_registry

    model = get_text_model("sans").with_threshold(0.99)
    obs, exp, labels = text_dataset(
        [font_registry()[0]], styles=("normal",), expansions=0, seed=99
    )
    mask = labels < 0.5
    obs, exp = obs[mask][: scale["robustness_samples"]], exp[mask][: scale["robustness_samples"]]
    config = AttackConfig(steps=2 * scale["attack_steps"])

    def run():
        rows = []
        for attack in ("MOM", "APGD"):
            for epsilon in (1.0, 2.0, 3.0):
                objective = matcher_objective(model, exp)
                x_adv = run_attack(attack, objective, obs, epsilon, "l2", config)
                flipped = model.predict(x_adv, exp)
                if flipped.any():
                    idx = int(np.flatnonzero(flipped)[0])
                    stats = perturbation_visibility(obs[idx] * 255, x_adv[idx] * 255)
                    rows.append(
                        f"{attack:<5} eps={epsilon:g}  SUCCESS  "
                        f"max|d|={stats['max']:.0f}/255  L2={stats['l2']:.0f}  "
                        f"changed={stats['changed_fraction'] * 100:.0f}% of pixels"
                    )
                else:
                    rows.append(f"{attack:<5} eps={epsilon:g}  no success in {len(obs)} tries")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    content = "\n".join(
        [
            "Table IV — successful adversarial examples vs the hardened model",
            "(MOM / APGD, L2 norm, the paper's exhibit grid)",
            "",
        ]
        + rows
        + [
            "",
            "Shape check: where attacks succeed at all, the perturbations touch",
            "a large share of the tile at high amplitude — consistent with the",
            "paper's argument that such perturbations on typeset text are",
            "noticeable to an attentive human.",
        ]
    )
    record_result("table4_examples", content)
    assert rows
