"""Figure 6: request delay vs session time, and the cutoff session length.

The paper models ``L = T(init) + sum T(frame_i) + T(request) - T(session)``
and finds L flattens at ``T(frame_last) + T(request)`` once the session is
long enough (cutoff 2.6s CPU / 4.6s GPU).
"""

from benchmarks.conftest import record_result
from benchmarks.harness import run_interactive_session


def test_figure6_request_delay(benchmark, scale, text_model, image_model):
    from repro.core.timing import cutoff_session_length, delay_curve, request_delay

    def run():
        out = {}
        for label, batched in (("CPU", False), ("GPU", True)):
            decision, report, session_seconds = run_interactive_session(
                3, text_model, image_model, batched=batched
            )
            assert decision.certified, decision.reason
            out[label] = report.timing
        return out

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    session_lengths = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0]
    lines = ["Figure 6 — request delay L(s) vs session time (s)", ""]
    cutoffs = {}
    for label, timing in timings.items():
        curve = delay_curve(timing, session_lengths)
        cutoff = cutoff_session_length(timing, max_seconds=60.0, resolution=0.05)
        cutoffs[label] = cutoff
        floor = request_delay(timing, 6000.0)
        pts = "  ".join(f"{s:g}s:{delay:.3f}" for s, delay in curve)
        lines.append(f"{label}: {pts}")
        lines.append(
            f"{label}: cutoff session length = {cutoff:.2f}s, asymptotic floor = {floor:.3f}s"
        )
        lines.append("")
    lines += [
        "Paper: cutoffs 2.6s (CPU) and 4.6s (GPU); long sessions pay only",
        "T(frame_last)+T(request) = 0.230s (CPU) / 0.197s (GPU).",
        "Shape: L decreases monotonically with session length and flattens",
        "at the floor beyond the cutoff.",
    ]
    record_result("figure6_delay", "\n".join(lines))

    for label, timing in timings.items():
        floor = request_delay(timing, 6000.0)
        assert floor >= timing.frame_times[-1] + timing.t_request - 1e-9
        assert request_delay(timing, 0.0) >= request_delay(timing, 30.0)
        assert abs(request_delay(timing, 60.0) - floor) < 0.05
        assert cutoffs[label] < 60.0
