"""Plan transport: pooled zero-copy buffers vs the list-based gather.

PR 7 replaced the planner's per-unit array transport (a Python list of
freshly-allocated 32x32 tiles, ``np.stack``-ed and re-cast at execute
time) with pooled ``(N, 32, 32)`` float32 buffers written in place at
collect time and fed to the engine as views.  This benchmark measures
both claims on the same data volume:

* **steady-state allocations** (tracemalloc peak churn per frame): the
  pooled transport must show *zero per-unit* allocation — flat churn as
  the unit count doubles, and a small fraction of the list path's;
* **subsequent-frame latency**: moving rows through resident buffers
  must not be slower than allocate-stack-cast.

A replica of the retired list transport lives in this file so the
comparison survives the old code's deletion.  The end-to-end section
drives a real ``DisplayValidator`` (no digest cache, so every frame
re-collects) and reports first-frame vs steady-state latency plus the
pool's own counters: after warm-up, zero new pool allocations.
"""

import copy
import time
import tracemalloc

import numpy as np

from benchmarks.conftest import record_metrics, record_result
from repro.core.display import DisplayValidator
from repro.core.planbuf import PLAN_DTYPE, thread_pool
from repro.core.verifiers import TILE, ImageVerifier, TextVerifier, ValidationPlan
from repro.datasets.forms import jotform_page
from repro.raster.stacks import stack_registry
from repro.server.generate import build_vspec
from repro.web.browser import Browser
from repro.web.hypervisor import Machine

#: Unit counts compared per scale; the doubling pair feeds the
#: "churn stays flat as units double" assertion.
UNITS = {"small": (128, 256), "paper": (256, 512)}

WARMUP = 2
ROUNDS = 7

#: Absolute slack for "zero per-unit allocations": interpreter noise
#: (list headers, view objects, tracemalloc's own bookkeeping) per
#: transport round, far below one 32x32 float64 tile per unit.
CHURN_SLACK = 128 * 1024


def _pooled_transport(plan: ValidationPlan, tiles_src: np.ndarray, chars: list) -> np.ndarray:
    """One frame's transport on the pooled path: collect + execute gather."""
    plan.reset()
    plan.add_tiles(tiles_src, chars)
    tiles = plan.text_tiles
    m = len(chars)
    backing = thread_pool().reserve(("bench-pending",), m, (TILE, TILE))
    for i in range(m):
        backing[i] = tiles[i]
    obs = backing[:m].reshape(m, 1, TILE, TILE)
    np.divide(obs, 255.0, out=obs)
    return obs


def _list_transport(tiles_src: np.ndarray, chars: list) -> np.ndarray:
    """Replica of the pre-pooling transport: the same data movement as
    per-unit fresh arrays + stack + cast + normalize (every step an
    allocation, all of it garbage one frame later)."""
    per_unit = [np.array(tile) for tile in tiles_src]
    stacked = np.stack(per_unit).reshape(len(per_unit), 1, TILE, TILE)
    return stacked.astype(PLAN_DTYPE) / 255.0


def _measure(fn) -> tuple:
    """``(median peak-churn bytes, median latency ms)`` per invocation."""
    for _ in range(WARMUP):
        fn()
    latencies = []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        latencies.append((time.perf_counter() - t0) * 1000.0)
    churn = []
    tracemalloc.start()
    try:
        fn()  # first traced call pays tracemalloc's own warm-up
        for _ in range(ROUNDS):
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            fn()
            churn.append(tracemalloc.get_traced_memory()[1] - base)
    finally:
        tracemalloc.stop()
    return float(np.median(churn)), float(np.median(latencies))


def test_plan_transport(benchmark, scale, text_model, image_model):
    rng = np.random.default_rng(7)
    sizes = UNITS[scale["name"]]

    def run():
        out = {"transport": {}, "validate": {}}

        # -- isolated transport: pooled vs list replica, same volume ----
        plan = ValidationPlan()
        for n in sizes:
            tiles_src = rng.uniform(0.0, 255.0, size=(n, TILE, TILE))
            chars = ["A"] * n
            pooled = _measure(lambda: _pooled_transport(plan, tiles_src, chars))
            listed = _measure(lambda: _list_transport(tiles_src, chars))
            out["transport"][n] = {"pooled": pooled, "list": listed}

        # -- end-to-end: repeated frames through a real validator -------
        page = jotform_page(0)
        vspec = build_vspec(copy.deepcopy(page), "bench-transport")
        machine = Machine(640, min(600, vspec.height))
        browser = Browser(machine, copy.deepcopy(page), stack=stack_registry()[0])
        browser.paint()
        frame = machine.sample_framebuffer().pixels
        validator = DisplayValidator(
            vspec,
            TextVerifier(text_model, batched=True),  # no cache: every
            ImageVerifier(image_model, batched=True),  # frame re-collects
        )
        t0 = time.perf_counter()
        first = validator.validate(frame)
        first_ms = (time.perf_counter() - t0) * 1000.0
        validator.validate(frame)  # steady state from here on
        pool_allocs = validator._plan.buffers.allocations
        steady = []
        for _ in range(5):
            t0 = time.perf_counter()
            validator.validate(frame)
            steady.append((time.perf_counter() - t0) * 1000.0)
        out["validate"] = {
            "first_ms": first_ms,
            "steady_ms": float(np.median(steady)),
            "text_units": first.plan_text_units,
            "image_pairs": first.plan_image_pairs,
            "pool_allocations_before": pool_allocs,
            "pool_allocations_after": validator._plan.buffers.allocations,
        }
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    # Zero per-unit steady-state allocations: pooled churn is absolutely
    # small, stays flat when the unit count doubles, and is a fraction of
    # the list path — whose churn provably carries the per-unit term.
    small, big = sizes
    pooled_small, _ = stats["transport"][small]["pooled"]
    pooled_big, _ = stats["transport"][big]["pooled"]
    list_small, _ = stats["transport"][small]["list"]
    list_big, _ = stats["transport"][big]["list"]
    assert pooled_small < CHURN_SLACK and pooled_big < CHURN_SLACK, (
        f"pooled transport churns {pooled_small:.0f}/{pooled_big:.0f} B/frame "
        f"— steady state is supposed to allocate nothing"
    )
    assert pooled_big <= pooled_small + CHURN_SLACK, (
        f"pooled churn grew with unit count ({pooled_small:.0f} -> {pooled_big:.0f} B)"
    )
    for n, churn in ((small, list_small), (big, list_big)):
        assert churn >= n * TILE * TILE * 8, "list replica lost its per-unit term"
        pooled_churn = stats["transport"][n]["pooled"][0]
        assert pooled_churn < 0.1 * churn
    # Pool buffers reached steady state: repeat frames allocate nothing.
    v = stats["validate"]
    assert v["pool_allocations_after"] == v["pool_allocations_before"], (
        "plan pool kept allocating on repeat frames"
    )

    lines = [
        "Plan transport: pooled zero-copy buffers vs list-based gather",
        f"(per-frame medians over {ROUNDS} rounds after {WARMUP} warm-up; churn =",
        " tracemalloc peak delta per transport round; list path is an in-file",
        " replica of the pre-pooling per-unit-array transport)",
        "",
        f"{'units':>6} {'path':<7} {'churn/frame':>12} {'latency (ms)':>13}",
    ]
    for n in sizes:
        for path in ("pooled", "list"):
            churn, ms = stats["transport"][n][path]
            lines.append(f"{n:>6} {path:<7} {churn / 1024.0:>10.1f}KB {ms:>13.3f}")
    lines.append("")
    lines.append(
        f"End-to-end (jotform page, {v['text_units']} text units, "
        f"{v['image_pairs']} image pairs, no digest cache): first frame "
        f"{v['first_ms']:.1f}ms, steady-state {v['steady_ms']:.1f}ms/frame, "
        f"{v['pool_allocations_after'] - v['pool_allocations_before']} pool "
        "allocations across repeat frames."
    )
    record_result("plan_transport", "\n".join(lines))
    record_metrics(
        "plan_transport",
        {
            "units": big,
            "pooled_churn_bytes": round(pooled_big),
            "list_churn_bytes": round(list_big),
            "churn_ratio": round(pooled_big / list_big, 4) if list_big else 0.0,
            "pooled_ms": round(stats["transport"][big]["pooled"][1], 3),
            "list_ms": round(stats["transport"][big]["list"][1], 3),
            "validate_first_ms": round(v["first_ms"], 1),
            "validate_steady_ms": round(v["steady_ms"], 1),
        },
    )
