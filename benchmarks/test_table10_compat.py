"""Table X: compatibility with real web forms vs TEE-based prior work."""

from benchmarks.conftest import record_result

PAPER = {"Fidelius": (20, 0.0077), "ProtectION": (196, 0.0758), "vWitness": (2255, 0.8723)}


def test_table10_compatibility(benchmark):
    from repro.baselines.teework import system_support_table
    from repro.datasets.corpus import full_corpus

    def run():
        corpus = full_corpus()
        return len(corpus), system_support_table(corpus, threshold=0.9)

    total, table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Table X — compatibility (forms with >=90% of elements supported)",
        "",
        f"corpus: {total} forms (2476 Jotform-like + 109 WPForms-like)",
        "",
        f"{'System':<12} {'compatible':>11} {'fraction':>9} {'paper':>16}",
    ]
    for name, (count, fraction) in table.items():
        p_count, p_frac = PAPER[name]
        lines.append(
            f"{name:<12} {count:>11} {fraction * 100:>8.2f}% "
            f"{p_count:>7} ({p_frac * 100:.2f}%)"
        )
    lines += [
        "",
        "Shape: Fidelius <1%, ProtectION single digits, vWitness ~87% —",
        "the TEE clients' minimal renderers cannot carry real forms.",
    ]
    record_result("table10_compat", "\n".join(lines))

    fid = table["Fidelius"][1]
    pro = table["ProtectION"][1]
    vw = table["vWitness"][1]
    assert fid < 0.02
    assert 0.03 < pro < 0.13
    assert 0.80 < vw < 0.95
