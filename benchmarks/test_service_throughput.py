"""Service throughput: sessions/sec through one shared WitnessService.

The service-oriented redesign exists so one long-lived witness — one set
of warm models, one sealed key, one cross-session digest cache — can
cover many guests at once.  This benchmark measures it directly: N
concurrent guest sessions (one machine/browser/extension each) against a
single service, sequential vs thread-pooled, reported as sessions per
second.
"""

from benchmarks.conftest import record_metrics, record_result
from benchmarks.harness import run_fleet_sessions

#: The acceptance floor: one service must drive at least this many
#: concurrent guest sessions over one warm model set.
MIN_CONCURRENT_SESSIONS = 8


def test_service_session_throughput(
    benchmark, scale, text_model, image_model, executor_mode, inference_mode
):
    n = max(MIN_CONCURRENT_SESSIONS, scale["perf_pages"])

    def run():
        out = {}
        for label, threads in (("sequential", 1), ("8 threads", 8)):
            fleet = run_fleet_sessions(
                n, text_model, image_model, threads=threads, batched=True,
                executor=executor_mode,
                config_overrides={"inference": inference_mode},
            )
            decisions, service, peak, wall = (
                fleet.decisions, fleet.service, fleet.peak_active, fleet.wall_seconds,
            )
            certified = sum(bool(d.certified) for d in decisions)
            cache = service.shared_cache
            out[label] = {
                "sessions": n,
                "certified": certified,
                "peak_active": peak,
                "wall_seconds": wall,
                "sessions_per_sec": n / wall if wall > 0 else float("inf"),
                "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
            }
            assert certified == n, f"{label}: only {certified}/{n} sessions certified"
            assert peak >= MIN_CONCURRENT_SESSIONS, (
                f"{label}: peak concurrent sessions {peak} < {MIN_CONCURRENT_SESSIONS}"
            )
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Service throughput: N concurrent guest sessions, one WitnessService",
        f"(one warm model set shared by all sessions; N={n}; "
        f"executor={executor_mode}; inference={inference_mode})",
        "",
        f"{'mode':<12} {'sessions':>8} {'certified':>9} {'peak':>5} "
        f"{'wall (s)':>9} {'sess/s':>8} {'cache hit':>9}",
    ]
    for label, row in stats.items():
        lines.append(
            f"{label:<12} {row['sessions']:>8} {row['certified']:>9} "
            f"{row['peak_active']:>5} {row['wall_seconds']:>9.2f} "
            f"{row['sessions_per_sec']:>8.2f} {row['cache_hit_rate']:>8.1%}"
        )
    record_result("service_throughput", "\n".join(lines))
    record_metrics(
        "service_throughput",
        {
            "executor": executor_mode,
            "inference": inference_mode,
            "sessions": n,
            "sessions_per_sec_sequential": round(
                stats["sequential"]["sessions_per_sec"], 2
            ),
            "sessions_per_sec_threaded": round(
                stats["8 threads"]["sessions_per_sec"], 2
            ),
        },
    )
