"""Table VII: accuracy of the output validator on a single display frame.

* Clickbench: tampered screenshot pairs validated with the whole-screen
  pseudo-VSPEC (graphics model only) — measures TP/FN; the paper saw one
  FN (text injected into an image) that the *text* model caught when
  invoked in follow-up.
* Jotform: benign cross-stack renderings validated against their VSPECs —
  measures TN/FP.
"""

from benchmarks.conftest import record_result
from benchmarks.harness import jotform_first_frame


def test_table7_validator_accuracy(benchmark, scale, text_model, image_model):
    from repro.core.caches import DigestCache
    from repro.core.verifiers import ImageVerifier
    from repro.datasets.clickbench import clickbench_dataset, validate_sample

    def run():
        samples = clickbench_dataset(count=scale["clickbench_samples"], width=480, height=600)
        cb = {"tp": 0, "fn": 0, "tn": 0, "fp": 0, "fn_names": []}
        for sample in samples:
            verifier = ImageVerifier(image_model, batched=True, cache=DigestCache())
            accepted = validate_sample(sample, verifier)
            if sample.tampered and not accepted:
                cb["tp"] += 1
            elif sample.tampered and accepted:
                cb["fn"] += 1
                cb["fn_names"].append(f"{sample.name}({sample.attack})")
            elif not sample.tampered and accepted:
                cb["tn"] += 1
            else:
                cb["fp"] += 1
        jot = [
            jotform_first_frame(seed, text_model, image_model, batched=True)
            for seed in range(scale["jotform_pages"])
        ]
        return cb, jot

    cb, jot = benchmark.pedantic(run, rounds=1, iterations=1)
    jot_tn = sum(1 for r in jot if r.ok)
    jot_fp = len(jot) - jot_tn
    cb_total = cb["tp"] + cb["fn"] + cb["tn"] + cb["fp"]
    cb_acc = (cb["tp"] + cb["tn"]) / cb_total
    jot_acc = jot_tn / len(jot)

    lines = [
        "Table VII — output validator accuracy on a single display frame",
        "",
        f"{'Dataset':<12} {'TP/TN':>7} {'FP/FN':>7} {'Accuracy':>9}",
        f"{'Clickbench':<12} {cb['tp'] + cb['tn']:>7} {cb['fp'] + cb['fn']:>7} {cb_acc * 100:>8.1f}%",
        f"{'Jotform':<12} {jot_tn:>7} {jot_fp:>7} {jot_acc * 100:>8.1f}%",
        "",
        f"Clickbench false negatives: {cb['fn_names'] or 'none'}",
        "",
        "Paper: Clickbench 39/1 (97.5%), Jotform 100/0 (100%).  The paper's",
        "single FN was text tampering inside an image, caught by the text",
        "model in follow-up analysis.",
    ]
    record_result("table7_accuracy", "\n".join(lines))

    assert cb_acc >= 0.8
    assert jot_acc >= 0.9
