"""Table VIII: first-display-frame validation time, CPU vs GPU setups.

The paper's GPU gains come from batching model invocations; the
reproduction's "GPU" analogue is the batched vectorized inference path,
"CPU" the sequential one-invocation-at-a-time path.
"""

from benchmarks.conftest import record_metrics, record_result
from benchmarks.harness import jotform_first_frame, summarize


def _clickbench_times(scale, image_model, batched: bool, inference: str):
    import gc
    import time

    from repro.core.caches import DigestCache
    from repro.core.verifiers import ImageVerifier
    from repro.datasets.clickbench import clickbench_dataset, validate_sample

    samples = clickbench_dataset(count=min(scale["clickbench_samples"], 8), width=480, height=600)
    # Warm-up (untimed): the first large batched forward pays one-off
    # buffer-allocation costs that dwarf steady-state validation when the
    # heap is churned by earlier suite activity; Table VIII measures the
    # latter.
    validate_sample(
        samples[0],
        ImageVerifier(image_model, batched=batched, cache=DigestCache(), inference=inference),
    )
    times = []
    for sample in samples:
        verifier = ImageVerifier(
            image_model, batched=batched, cache=DigestCache(), inference=inference
        )
        # Collect before every timed sample: a GC pause inherited from
        # earlier suite activity landing inside one measurement skews the
        # per-sample mean far more than steady-state validation varies.
        gc.collect()
        t0 = time.perf_counter()
        validate_sample(sample, verifier)
        times.append(time.perf_counter() - t0)
    return times


def test_table8_first_frame_times(benchmark, scale, text_model, image_model, inference_mode):
    plan_stats = {}

    def run():
        out = {}
        for label, batched in (("CPU", False), ("GPU", True)):
            jot = [
                jotform_first_frame(
                    seed, text_model, image_model, batched=batched, inference=inference_mode
                )
                for seed in range(scale["perf_pages"])
            ]
            out[(label, "Jotform")] = summarize(r.seconds for r in jot)
            plan_stats[label] = {
                "units": summarize(r.plan_units for r in jot),
                "forwards": summarize(r.forwards for r in jot),
            }
            out[(label, "Clickbench")] = summarize(
                _clickbench_times(scale, image_model, batched, inference_mode)
            )
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Table VIII — T(frame0): first display frame validation time (s)",
        f"(inference={inference_mode})",
        "",
        f"{'Setup':<6} {'Dataset':<12} {'Mean':>8} {'Max':>8} {'Min':>8} {'Stdev':>8}",
    ]
    for (setup, dataset), s in stats.items():
        lines.append(
            f"{setup:<6} {dataset:<12} {s['mean']:>8.3f} {s['max']:>8.3f} "
            f"{s['min']:>8.3f} {s['stdev']:>8.3f}"
        )
    cpu_cb = stats[("CPU", "Clickbench")]["mean"]
    gpu_cb = stats[("GPU", "Clickbench")]["mean"]
    cpu_jf = stats[("CPU", "Jotform")]["mean"]
    gpu_jf = stats[("GPU", "Jotform")]["mean"]
    lines += [
        "",
        f"Batched speedup: Clickbench {cpu_cb / gpu_cb:.1f}x, Jotform {cpu_jf / gpu_jf:.1f}x",
        "",
        "Validation-plan sizes (Jotform, per frame):",
    ]
    for label in ("CPU", "GPU"):
        ps = plan_stats[label]
        lines.append(
            f"  {label}: mean plan units {ps['units']['mean']:.1f}, "
            f"mean model forwards {ps['forwards']['mean']:.1f}"
        )
    lines += [
        "",
        "Paper (CPU/GPU mean): Clickbench 3.29/0.73s, Jotform 1.17/0.88s.",
        "Shape: batching helps most where invocations are plentiful",
        "(Clickbench's whole-screen tiling), less on invocation-light forms.",
        "The GPU setup's frame-level plan batching collapses per-frame",
        "forwards to O(1) per model kind (plus retry rings).",
    ]
    record_result("table8_first_frame", "\n".join(lines))
    record_metrics(
        "table8_first_frame",
        {
            "inference": inference_mode,
            "jotform_mean_s": {"cpu": round(cpu_jf, 4), "gpu": round(gpu_jf, 4)},
            "clickbench_mean_s": {"cpu": round(cpu_cb, 4), "gpu": round(gpu_cb, 4)},
            "forwards_per_frame": {
                "cpu": round(plan_stats["CPU"]["forwards"]["mean"], 1),
                "gpu": round(plan_stats["GPU"]["forwards"]["mean"], 1),
            },
        },
    )

    assert gpu_cb < cpu_cb  # batching wins on the invocation-heavy dataset
    assert (cpu_cb / gpu_cb) > (cpu_jf / gpu_jf) * 0.8  # bigger win on Clickbench
    # Plan-level batching: batched frames need orders of magnitude fewer
    # forwards than sequential frames for the same plan sizes.
    assert plan_stats["GPU"]["units"]["mean"] == plan_stats["CPU"]["units"]["mean"]
    assert plan_stats["GPU"]["forwards"]["mean"] * 10 < plan_stats["CPU"]["forwards"]["mean"]
