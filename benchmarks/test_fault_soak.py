"""Fault soak: Table III companion — robustness under injected faults.

The paper's Table III measures model robustness under adversarial
*inputs*; this companion measures pipeline robustness under injected
*infrastructure* faults.  Every shipped :class:`repro.faults.FaultPlan`
(frame drop/corruption, forward raise, NaN logits, flusher crash, flush
stall, admission timeout, cache fault) replays the scenario grid under
the shared-executor baseline and the fail-closed contract is asserted:

* a tampered session NEVER certifies, under any plan (zero fail-open);
* honest sessions under recoverable plans stay bit-identical to the
  fault-free run; under evidence-perturbing plans they still certify;
  under corruption plans they refuse cleanly;
* a flusher crash mid-fleet recovers (restarts == crashes) without
  losing a session.

Also measures the disarmed-seam overhead: an armed injector's miss on a
cold point (the per-frame cost every seam pays when its point is not
scheduled), recorded as ns/op next to the robustness counters in
``bench_summary.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_metrics, record_result


def _fault_specs(scale):
    from repro.scenarios import ScenarioSpec, default_soak_specs

    if scale["name"] == "paper":
        return default_soak_specs()
    # Small scale: two archetypes, every behaviour that matters to the
    # fail-closed contract (honest certify, tampered refuse, abandoning
    # no-decision).
    return [
        ScenarioSpec("tall-form", script="honest"),
        ScenarioSpec("tall-form", script="tampered"),
        ScenarioSpec("dashboard", script="honest"),
        ScenarioSpec("dashboard", script="abandoning"),
    ]


def _disarmed_decide_ns(iterations: int = 200_000) -> float:
    """ns/op of the injector's fast-miss on an unscheduled point."""
    from repro.faults import FaultInjector, cache_fault_plan

    injector = FaultInjector(cache_fault_plan())
    t0 = time.perf_counter()
    for _ in range(iterations):
        injector.decide("infer.raise")
    return (time.perf_counter() - t0) / iterations * 1e9


def test_fault_soak_fail_closed(scale, text_model, image_model):
    from repro.faults import shipped_plans
    from repro.scenarios import combo_by_name, run_soak

    # Runtime seams (flusher crash, flush stall, admission timeout) only
    # exist under the shared executor, so the fault soak pins its
    # baseline there regardless of the suite-wide --executor knob.
    combo = combo_by_name("batched-shared-frozen")
    plans = shipped_plans()
    result = run_soak(
        _fault_specs(scale),
        combos=(combo,),
        baseline=combo,
        text_model=text_model,
        image_model=image_model,
        faults=plans,
    )
    decide_ns = _disarmed_decide_ns()

    rows = [
        "Table III companion — fail-closed robustness under injected faults",
        "",
        f"{'plan':<20} {'expect':<10} {'fired':>5} {'sessions':>8} "
        f"{'certified':>9} {'refused':>7} {'crashes':>7} {'restarts':>8} {'degraded':>8}",
    ]
    for plan in plans:
        stats = result.fault_stats[plan.name]
        health = stats["health"]
        rows.append(
            f"{plan.name:<20} {stats['expectation']:<10} {stats['faults_injected']:>5} "
            f"{stats['sessions']:>8} {stats['certified']:>9} {stats['refused']:>7} "
            f"{health.get('flusher_crashes', 0):>7} {health.get('flusher_restarts', 0):>8} "
            f"{health.get('degraded_forwards', 0):>8}"
        )
    rows += [
        "",
        f"fault failures: {len(result.fault_failures)} (fail-open certifications, "
        "expectation breaches, crashes)",
        f"disarmed-seam decide miss: {decide_ns:.0f} ns/op",
        "",
        "Contract: tampered sessions never certify under any plan; recoverable",
        "plans leave honest fingerprints bit-identical; corruption plans refuse",
        "cleanly; a crashed flusher restarts without losing a waiting session.",
    ]
    content = "\n".join(rows + [f"  FAULT-FAILURE {s} under {p}: {d}" for p, s, d in result.fault_failures])
    record_result("table3_robustness_faults", content)

    per_plan = {
        plan.name: {
            "expectation": stats["expectation"],
            "faults_injected": stats["faults_injected"],
            "sessions": stats["sessions"],
            "certified": stats["certified"],
            "refused": stats["refused"],
            "recoveries": stats["health"].get("flusher_restarts", 0),
            "degraded_forwards": stats["health"].get("degraded_forwards", 0),
            "admission_timeouts": stats["health"].get("admission_timeouts", 0),
            "quarantined_sessions": stats["health"].get("quarantined_sessions", 0),
        }
        for plan, stats in ((p, result.fault_stats[p.name]) for p in plans)
    }
    record_metrics(
        "table3_robustness_faults",
        {
            "plans": len(plans),
            "scenarios": result.scenarios,
            "fault_failures": len(result.fault_failures),
            "fail_open_certifications": sum(
                "FAIL-OPEN" in detail for _, _, detail in result.fault_failures
            ),
            "faults_injected_total": sum(
                s["faults_injected"] for s in result.fault_stats.values()
            ),
            "disarmed_decide_ns": round(decide_ns, 1),
            "per_plan": per_plan,
            "wall_seconds": round(result.wall_seconds, 2),
        },
    )

    # The acceptance contract, plan by plan.
    assert result.ok, result.summary()
    assert not result.fault_failures, result.summary()
    assert set(result.fault_stats) == {p.name for p in plans}
    crash = result.fault_stats["flusher-crash"]
    assert crash["faults_injected"] == 2
    assert crash["health"]["flusher_restarts"] == crash["health"]["flusher_crashes"] >= 2
    for refusing in ("frame-corruption", "nan-logits"):
        stats = result.fault_stats[refusing]
        assert stats["certified"] == 0 and stats["refused"] >= 1, refusing
    assert result.fault_stats["frame-drop"]["certified"] >= 1
    assert result.fault_stats["flush-stall"]["health"]["degraded_forwards"] >= 1
    assert result.fault_stats["admission-timeout"]["health"]["admission_timeouts"] >= 1
