"""Figure 5: first-frame time vs model invocations, with regression fit.

The paper fits ``T(frame0) ~ c_t * x_t + c_g * x_g`` over the Jotform
set and observes the graphics coefficient exceeds the text one ("it is
more expensive to invoke the graphic model as it takes two graphics as
input and has to do two feature extractions").

De-flaking: the fit runs over wall-clock timings of single frames, so a
burst of machine load (CI neighbors, thermal throttling) used to drown
the per-invocation signal and trip the assertions.  Instead of the old
"re-measure once and hope" retry, every page is now timed
``TIMING_REPEATS`` times on ``time.perf_counter`` and contributes its
*median* — load spikes hit individual runs, medians shrug them off — and
the per-page spread doubles as a load gauge: when the machine is
measurably noisy the R^2 floor relaxes (the regression *shape* is still
asserted, just with a tolerance that acknowledges the measured noise).
"""

import numpy as np

from benchmarks.conftest import record_metrics, record_result
from benchmarks.harness import jotform_first_frame

#: Timed runs per page; each page contributes its median.
TIMING_REPEATS = 5

#: Relative per-page spread (max-min over median) below which the
#: machine counts as quiet.
QUIET_SPREAD = 0.25

#: R^2 floors: quiet machine vs measurably loaded machine.
R2_FLOOR_QUIET = 0.5
R2_FLOOR_LOADED = 0.3


def _fit(results):
    x_t = np.asarray([r.text_invocations for r in results], dtype=float)
    x_g = np.asarray([r.image_invocations for r in results], dtype=float)
    t = np.asarray([r.seconds for r in results], dtype=float)
    design = np.column_stack([x_t, x_g, np.ones_like(x_t)])
    coef, _res, _rank, _sv = np.linalg.lstsq(design, t, rcond=None)
    predicted = design @ coef
    ss_res = float(np.sum((t - predicted) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    r2 = 1.0 - ss_res / max(ss_tot, 1e-12)
    return tuple(float(c) for c in coef), r2


def _measure_page(seed, text_model, image_model):
    """Median-of-k measurement of one page's first-frame validation.

    Invocation counts are deterministic across repeats (same page, same
    models); only the wall-clock varies, so the median re-attaches to the
    first run's counts.  Returns ``(result, relative_spread)``.
    """
    from dataclasses import replace

    runs = [
        jotform_first_frame(seed, text_model, image_model, batched=False)
        for _ in range(TIMING_REPEATS)
    ]
    seconds = np.asarray([r.seconds for r in runs])
    median = float(np.median(seconds))
    spread = float((seconds.max() - seconds.min()) / max(median, 1e-9))
    return replace(runs[0], seconds=median), spread


def test_figure5_invocation_regression(benchmark, scale, text_model, image_model):
    def run():
        # Warm-up (untimed): absorb one-off allocation costs so the fit
        # estimates steady-state per-invocation cost (cf. Table VIII).
        jotform_first_frame(0, text_model, image_model, batched=False)
        # Sequential (CPU) mode: per-invocation cost is the quantity the
        # regression estimates.
        return [
            _measure_page(seed, text_model, image_model)
            for seed in range(max(scale["perf_pages"], 8))
        ]

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    results = [r for r, _ in measured]
    spreads = [s for _, s in measured]
    load = float(np.median(spreads))
    quiet = load < QUIET_SPREAD
    r2_floor = R2_FLOOR_QUIET if quiet else R2_FLOOR_LOADED

    (c_text, c_graphics, intercept), r2 = _fit(results)

    lines = [
        "Figure 5 — T(frame0) vs model invocations (Jotform, sequential mode)",
        "",
        f"median of {TIMING_REPEATS} timed runs per page (time.perf_counter)",
        "",
        f"{'page':>5} {'x_text':>7} {'x_graphics':>11} {'T(frame0) s':>12} {'spread':>7}",
    ]
    for r, s in measured:
        lines.append(
            f"{r.seed:>5} {r.text_invocations:>7} {r.image_invocations:>11} "
            f"{r.seconds:>12.3f} {s:>6.1%}"
        )
    shape_held = c_graphics > c_text
    lines += [
        "",
        f"least-squares fit: T = {c_text * 1000:.2f}ms * x_t + {c_graphics * 1000:.2f}ms * x_g "
        f"+ {intercept * 1000:.1f}ms   (R^2 = {r2:.3f})",
        f"machine load gauge: median per-page spread {load:.1%} -> "
        f"{'quiet' if quiet else 'loaded'}, R^2 floor {r2_floor}",
        "",
        "Paper's shape: per-invocation graphics cost exceeds per-invocation",
        "text cost, and T(frame0) is predictable from the counts.",
        f"This run: c_graphics {'>' if shape_held else '<='} c_text "
        f"({'matches' if shape_held else 'does NOT match'} the paper's shape; "
        "few pages carry graphics invocations, so c_g is noise-sensitive).",
    ]
    record_result("figure5_regression", "\n".join(lines))
    record_metrics(
        "figure5_regression",
        {
            "c_text_ms": round(c_text * 1000, 4),
            "c_graphics_ms": round(c_graphics * 1000, 4),
            "intercept_ms": round(intercept * 1000, 2),
            "r2": round(r2, 4),
            "load_spread": round(load, 4),
            "r2_floor": r2_floor,
            "timing_repeats": TIMING_REPEATS,
        },
    )

    assert c_text > 0
    assert r2 > r2_floor, (
        f"R^2 {r2:.3f} below {'quiet' if quiet else 'load-relaxed'} floor "
        f"{r2_floor} (median per-page spread {load:.1%})"
    )
