"""Figure 5: first-frame time vs model invocations, with regression fit.

The paper fits ``T(frame0) ~ c_t * x_t + c_g * x_g`` over the Jotform
set and observes the graphics coefficient exceeds the text one ("it is
more expensive to invoke the graphic model as it takes two graphics as
input and has to do two feature extractions").
"""

import numpy as np

from benchmarks.conftest import record_result
from benchmarks.harness import jotform_first_frame


def _fit(results):
    x_t = np.asarray([r.text_invocations for r in results], dtype=float)
    x_g = np.asarray([r.image_invocations for r in results], dtype=float)
    t = np.asarray([r.seconds for r in results], dtype=float)
    design = np.column_stack([x_t, x_g, np.ones_like(x_t)])
    coef, _res, _rank, _sv = np.linalg.lstsq(design, t, rcond=None)
    predicted = design @ coef
    ss_res = float(np.sum((t - predicted) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    r2 = 1.0 - ss_res / max(ss_tot, 1e-12)
    return tuple(float(c) for c in coef), r2


def test_figure5_invocation_regression(benchmark, scale, text_model, image_model):
    def run():
        # Warm-up (untimed): absorb one-off allocation costs so the fit
        # estimates steady-state per-invocation cost (cf. Table VIII).
        jotform_first_frame(0, text_model, image_model, batched=False)
        # Sequential (CPU) mode: per-invocation cost is the quantity the
        # regression estimates.
        return [
            jotform_first_frame(seed, text_model, image_model, batched=False)
            for seed in range(max(scale["perf_pages"], 8))
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    (c_text, c_graphics, intercept), r2 = _fit(results)
    if r2 <= 0.5 or c_text <= 0:
        # The fit is over wall-clock timings of single frames: a burst of
        # machine load during the measured window (CI neighbors, thermal
        # throttling) can drown the per-invocation signal.  One untimed
        # re-measurement separates that noise from a real regression.
        results = run()
        (c_text, c_graphics, intercept), r2 = _fit(results)

    lines = [
        "Figure 5 — T(frame0) vs model invocations (Jotform, sequential mode)",
        "",
        f"{'page':>5} {'x_text':>7} {'x_graphics':>11} {'T(frame0) s':>12}",
    ]
    for r in results:
        lines.append(
            f"{r.seed:>5} {r.text_invocations:>7} {r.image_invocations:>11} {r.seconds:>12.3f}"
        )
    shape_held = c_graphics > c_text
    lines += [
        "",
        f"least-squares fit: T = {c_text * 1000:.2f}ms * x_t + {c_graphics * 1000:.2f}ms * x_g "
        f"+ {intercept * 1000:.1f}ms   (R^2 = {r2:.3f})",
        "",
        "Paper's shape: per-invocation graphics cost exceeds per-invocation",
        "text cost, and T(frame0) is predictable from the counts.",
        f"This run: c_graphics {'>' if shape_held else '<='} c_text "
        f"({'matches' if shape_held else 'does NOT match'} the paper's shape; "
        "few pages carry graphics invocations, so c_g is noise-sensitive).",
    ]
    record_result("figure5_regression", "\n".join(lines))

    assert c_text > 0
    assert r2 > 0.5
