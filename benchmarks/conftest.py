"""Benchmark fixtures and result recording.

Every benchmark regenerates one of the paper's tables or figures.  The
formatted reproduction table is printed *and* written to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capturing; EXPERIMENTS.md collects them.

Scale knob: ``REPRO_BENCH_SCALE`` (default ``small``) controls dataset
sizes so the whole suite stays laptop-friendly; ``paper`` uses sizes
closer to the original evaluation.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Machine-readable per-benchmark key metrics, merged benchmark-by-
#: benchmark so the perf trajectory stays diffable across PRs.
SUMMARY_PATH = os.path.join(RESULTS_DIR, "bench_summary.json")

SCALES = {
    "small": {
        "jotform_pages": 12,
        "clickbench_samples": 12,
        "robustness_samples": 36,
        "attack_steps": 12,
        "single_font_models": 2,
        "perf_pages": 6,
    },
    "paper": {
        "jotform_pages": 100,
        "clickbench_samples": 40,
        "robustness_samples": 120,
        "attack_steps": 20,
        "single_font_models": 5,
        "perf_pages": 20,
    },
}


def bench_scale() -> dict:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"unknown bench scale {name!r}")
    return dict(SCALES[name], name=name)


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def executor_mode(request) -> str:
    """``"inline"`` or ``"shared"``: which plan executor the service-level
    benchmarks should run against (``--executor`` / ``REPRO_BENCH_EXECUTOR``)."""
    from repro.runtime.executor import EXECUTOR_MODES

    option = request.config.getoption("--executor", default=None)
    if option is not None:
        return option
    env = os.environ.get("REPRO_BENCH_EXECUTOR", "inline")
    if env not in EXECUTOR_MODES:
        raise ValueError(
            f"REPRO_BENCH_EXECUTOR must be one of {EXECUTOR_MODES}, got {env!r}"
        )
    return env


@pytest.fixture(scope="session")
def inference_mode(request) -> str:
    """``"frozen"`` or ``"training"``: which inference engine the
    service-level benchmarks run (``--inference`` / ``REPRO_BENCH_INFERENCE``)."""
    from repro.nn.infer import INFERENCE_MODES

    option = request.config.getoption("--inference", default=None)
    if option is not None:
        return option
    env = os.environ.get("REPRO_BENCH_INFERENCE", "frozen")
    if env not in INFERENCE_MODES:
        raise ValueError(
            f"REPRO_BENCH_INFERENCE must be one of {INFERENCE_MODES}, got {env!r}"
        )
    return env


@pytest.fixture(scope="session")
def text_model():
    from repro.nn.zoo import get_text_model

    return get_text_model("base")


@pytest.fixture(scope="session")
def image_model():
    from repro.nn.zoo import get_image_model

    return get_image_model()


def record_result(name: str, content: str) -> str:
    """Print a reproduction table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(content.rstrip() + "\n")
    print(f"\n{content}\n[written to {path}]")
    return path


def record_metrics(name: str, metrics: dict) -> str:
    """Merge one benchmark's key metrics into ``bench_summary.json``.

    Each benchmark owns one top-level key; re-running a single benchmark
    updates only its own entry, so the summary accumulates across partial
    runs and its diffs track the perf trajectory PR over PR.

    The write is atomic (temp file + ``os.replace``): the summary is the
    accumulated record of *every prior* benchmark run, so a crash or an
    unserializable metric mid-dump must never truncate it.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data: dict = {}
    if os.path.exists(SUMMARY_PATH):
        try:
            with open(SUMMARY_PATH) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[name] = metrics
    fd, tmp_path = tempfile.mkstemp(
        dir=RESULTS_DIR, prefix=".bench_summary.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_path, SUMMARY_PATH)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return SUMMARY_PATH
