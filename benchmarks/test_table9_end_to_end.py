"""Table IX: end-to-end performance of interactive sessions.

Full vWitness sessions with the honest-user model filling generated
forms: init + first frame, subsequent frame statistics (where the
differential-detection and caching machinery earns its keep), and the
validation-function + signing time.
"""

import numpy as np

from benchmarks.conftest import record_metrics, record_result
from benchmarks.harness import run_interactive_session, summarize


def test_table9_end_to_end(
    benchmark, scale, text_model, image_model, executor_mode, inference_mode
):
    def run():
        out = {}
        for label, batched in (("CPU", False), ("GPU", True)):
            init_first, subsequent, request = [], [], []
            plan_units, forwards, frames = 0, 0, 0
            certified = 0
            for seed in range(scale["perf_pages"]):
                decision, report, _session = run_interactive_session(
                    seed, text_model, image_model, batched=batched,
                    executor=executor_mode, inference=inference_mode,
                )
                certified += bool(decision.certified)
                timing = report.timing
                init_first.append(timing.t_init + timing.t_first_frame)
                subsequent.extend(timing.subsequent_frame_times)
                request.append(timing.t_request)
                plan_units += report.plan_text_units + report.plan_image_pairs
                forwards += report.text_forwards + report.image_forwards
                frames += report.frames_sampled
            out[label] = {
                "init_first": float(np.mean(init_first)),
                "subsequent": summarize(subsequent),
                "request": float(np.mean(request)),
                "certified": certified,
                "total": scale["perf_pages"],
                "plan_units_per_frame": plan_units / max(frames, 1),
                "forwards_per_frame": forwards / max(frames, 1),
            }
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Table IX — end-to-end performance (s)",
        f"(executor={executor_mode}; inference={inference_mode})",
        "",
        f"{'Setup':<6} {'Init+First':>11} {'Sub.Mean':>9} {'Sub.Max':>8} {'Sub.Min':>8} "
        f"{'Sub.Stdev':>9} {'Valid.fn':>9}",
    ]
    for label, s in stats.items():
        sub = s["subsequent"]
        lines.append(
            f"{label:<6} {s['init_first']:>11.3f} {sub['mean']:>9.3f} {sub['max']:>8.3f} "
            f"{sub['min']:>8.3f} {sub['stdev']:>9.3f} {s['request']:>9.3f}"
        )
    lines += [
        "",
        f"Certified sessions: CPU {stats['CPU']['certified']}/{stats['CPU']['total']}, "
        f"GPU {stats['GPU']['certified']}/{stats['GPU']['total']}",
        "",
        "Validation-plan sizes (per sampled frame):",
    ]
    for label in ("CPU", "GPU"):
        s = stats[label]
        lines.append(
            f"  {label}: mean plan units {s['plan_units_per_frame']:.1f}, "
            f"mean model forwards {s['forwards_per_frame']:.1f}"
        )
    lines += [
        "",
        "Paper (CPU/GPU): init+first 0.760/1.778, subsequent mean 0.194/0.161,",
        "validation fn 0.036/0.036.  Shape: subsequent frames are much cheaper",
        "than the first (differential detection + caches); request-time work",
        "is small and setup-independent.  GPU rows run frame-level plan",
        "batching: O(1) forwards per model kind per frame.",
    ]
    record_result("table9_end_to_end", "\n".join(lines))
    record_metrics(
        "table9_end_to_end",
        {
            "executor": executor_mode,
            "inference": inference_mode,
            "init_first_s": {
                "cpu": round(stats["CPU"]["init_first"], 4),
                "gpu": round(stats["GPU"]["init_first"], 4),
            },
            "subsequent_mean_s": {
                "cpu": round(stats["CPU"]["subsequent"]["mean"], 4),
                "gpu": round(stats["GPU"]["subsequent"]["mean"], 4),
            },
            "request_s": {
                "cpu": round(stats["CPU"]["request"], 4),
                "gpu": round(stats["GPU"]["request"], 4),
            },
        },
    )

    for label in ("CPU", "GPU"):
        s = stats[label]
        assert s["certified"] == s["total"], f"{label}: honest sessions must certify"
        assert s["subsequent"]["mean"] < s["init_first"]
        assert s["request"] < 0.2
    # Plan-level batching: same unit inputs, far fewer model forwards.
    assert (
        stats["GPU"]["forwards_per_frame"] * 5 < stats["CPU"]["forwards_per_frame"]
        or stats["CPU"]["forwards_per_frame"] == 0
    )
