"""Runtime micro-batching: inline vs shared executor on a concurrent fleet.

The cross-session runtime exists for exactly one reason: N concurrent
guests should not cost N independent small CNN forwards per validation
round when one large forward covers them all.  This benchmark drives the
same mixed-page guest fleet through one :class:`WitnessService` twice —
``executor="inline"`` (each session forwards on its own thread) and
``executor="shared"`` (rounds coalesce in the micro-batching runtime) —
and compares sessions/sec and, the headline number, *total model
forwards actually executed*.

The acceptance bar: with 16 concurrent synthetic guests the shared
executor must perform strictly fewer forwards than inline, with
identical certification decisions.
"""

from benchmarks.conftest import record_metrics, record_result
from benchmarks.harness import run_fleet_sessions

#: The fleet sizes compared (concurrent guests); 16 is the acceptance
#: configuration, the second point shows scaling.
FLEETS = {"small": (16,), "paper": (16, 32)}

#: Distinct generated forms across the fleet (guest i renders form
#: ``i % PAGE_MIX``): a mixed fleet, not one page warmed N times.
PAGE_MIX = 6

#: Micro-batch flush deadline for this fleet.  The frozen inference
#: engine (PR 4) cut the forward itself ~2.5-3x, which shrinks the window
#: in which concurrent rounds naturally overlap; a deadline sized to the
#: (now cheaper) forward keeps coalescing effective — exactly the tuning
#: an operator would make after deploying the engine.
FLUSH_DEADLINE_MS = 10.0


def test_runtime_microbatch(benchmark, scale, text_model, image_model, inference_mode):
    page_seeds = tuple(range(PAGE_MIX))

    def run():
        out = []
        for guests in FLEETS[scale["name"]]:
            row = {"guests": guests}
            for mode in ("inline", "shared"):
                fleet = run_fleet_sessions(
                    guests,
                    text_model,
                    image_model,
                    threads=guests,
                    page_seeds=page_seeds,
                    executor=mode,
                    config_overrides={
                        "inference": inference_mode,
                        "runtime_flush_deadline_ms": FLUSH_DEADLINE_MS,
                    },
                    # Guests arrive concurrently (connect + first frame on
                    # worker threads): the realistic pattern, and the one
                    # where first-frame plans coalesce across sessions.
                    concurrent_connect=True,
                )
                assert len(fleet.reports) == guests
                row[mode] = fleet
            inline, shared = row["inline"], row["shared"]
            # Identical certification decisions, session by session...
            assert [d.certified for d in shared.decisions] == [
                d.certified for d in inline.decisions
            ]
            assert shared.certified == guests, (
                f"{guests} guests: only {shared.certified} certified "
                f"({[d.reason for d in shared.decisions if not d.certified]})"
            )
            # ...for strictly fewer model forwards (the tentpole claim).
            assert shared.total_forwards < inline.total_forwards, (
                f"{guests} guests: shared executor ran {shared.total_forwards} "
                f"forwards vs {inline.total_forwards} inline — no coalescing happened"
            )
            out.append(row)
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Runtime micro-batching: concurrent guest fleet, inline vs shared executor",
        f"(mixed fleet over {PAGE_MIX} distinct forms; one WitnessService per run;",
        f" inference={inference_mode}; flush deadline {FLUSH_DEADLINE_MS:.0f}ms;",
        " forwards = model forward passes actually executed, fleet-wide)",
        "",
        f"{'guests':>6} {'mode':<8} {'certified':>9} {'wall (s)':>9} {'sess/s':>7} "
        f"{'forwards':>9} {'saved':>6} {'occupancy':>9} {'flush ms':>9}",
    ]
    for row in stats:
        for mode in ("inline", "shared"):
            fleet = row[mode]
            runtime = fleet.runtime_stats.get("runtime")
            if runtime is not None:
                occupancy = runtime["histograms"]["batch_occupancy.text"]["mean"]
                flush_ms = runtime["histograms"]["flush_wait_ms.text"]["mean"]
                occupancy_s, flush_s = f"{occupancy:>9.1f}", f"{flush_ms:>9.2f}"
            else:
                occupancy_s, flush_s = f"{'-':>9}", f"{'-':>9}"
            lines.append(
                f"{row['guests']:>6} {mode:<8} {fleet.certified:>9} "
                f"{fleet.wall_seconds:>9.2f} "
                f"{row['guests'] / fleet.wall_seconds:>7.2f} "
                f"{fleet.total_forwards:>9} {fleet.forwards_saved:>6} "
                f"{occupancy_s} {flush_s}"
            )
    for row in stats:
        inline, shared = row["inline"], row["shared"]
        saved = inline.total_forwards - shared.total_forwards
        lines.append("")
        lines.append(
            f"{row['guests']} guests: shared executor ran {shared.total_forwards} "
            f"forwards vs {inline.total_forwards} inline "
            f"({saved} fewer, {saved / inline.total_forwards:.0%}), "
            "identical certification decisions."
        )
    record_result("runtime_microbatch", "\n".join(lines))
    headline = stats[0]
    record_metrics(
        "runtime_microbatch",
        {
            "inference": inference_mode,
            "guests": headline["guests"],
            "forwards_inline": headline["inline"].total_forwards,
            "forwards_shared": headline["shared"].total_forwards,
            "sessions_per_sec_inline": round(
                headline["guests"] / headline["inline"].wall_seconds, 2
            ),
            "sessions_per_sec_shared": round(
                headline["guests"] / headline["shared"].wall_seconds, 2
            ),
        },
    )
