"""Table V: trusted computing base size.

Counts the lines of code of this reproduction's trusted components (the
equivalents of the paper's 1,128-line vWitness core) and reports them next
to the paper's numbers for the substrate dependencies it inherits
(OpenCV, TensorFlow Lite, Xen, browsers).
"""

import os

from benchmarks.conftest import record_result

#: Paper's Table V reference values (LoC).
PAPER_TCB = {
    "vWitness": 1_128,
    "WolfCrypt": 2_801,
    "OpenCV": 177_396,
    "Tensorflow Lite": 14_580,
    "Xen": 555_160,
    "Chromium": 25_163_547,
    "Firefox": 20_928_358,
}


def _loc(package_dir: str) -> int:
    total = 0
    for root, _dirs, files in os.walk(package_dir):
        for name in files:
            if not name.endswith(".py"):
                continue
            with open(os.path.join(root, name)) as fh:
                total += sum(1 for line in fh if line.strip() and not line.strip().startswith("#"))
    return total


def test_table5_tcb_size(benchmark):
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro")

    def count():
        return {
            "vWitness core (repro.core)": _loc(os.path.join(src, "core")),
            "crypto (repro.crypto)": _loc(os.path.join(src, "crypto")),
            "vision substrate (repro.vision)": _loc(os.path.join(src, "vision")),
            "CNN substrate (repro.nn)": _loc(os.path.join(src, "nn")),
            "VSPEC model (repro.vspec)": _loc(os.path.join(src, "vspec")),
            "untrusted web substrate (repro.web)": _loc(os.path.join(src, "web")),
        }

    counts = benchmark.pedantic(count, rounds=1, iterations=1)

    lines = ["Table V — TCB size (reproduction LoC vs paper)", ""]
    lines.append(f"{'Reproduction component':<38} {'LoC':>8}")
    for name, loc in counts.items():
        lines.append(f"{name:<38} {loc:>8,}")
    lines.append("")
    lines.append(f"{'Paper component':<38} {'LoC':>10}")
    for name, loc in PAPER_TCB.items():
        lines.append(f"{name:<38} {loc:>10,}")
    lines.append("")
    lines.append(
        "Shape check: the trusted witness logic is a few thousand lines —\n"
        "orders of magnitude below a commodity browser — and the bulk of the\n"
        "TCB is substitutable substrate (vision/CNN), exactly as in the paper."
    )
    record_result("table5_tcb", "\n".join(lines))

    trusted_core = counts["vWitness core (repro.core)"] + counts["crypto (repro.crypto)"]
    browser_scale = PAPER_TCB["Chromium"]
    assert trusted_core < 10_000
    assert trusted_core * 1_000 < browser_scale
