"""Table VI: complexity of the evaluation datasets (model invocations)."""

import numpy as np

from benchmarks.conftest import record_result
from benchmarks.harness import jotform_first_frame


def test_table6_dataset_complexity(benchmark, scale, text_model, image_model):
    from repro.core.verifiers import ImageVerifier, split_region_into_tiles
    from repro.datasets.clickbench import clickbench_dataset

    def run():
        # Jotform: text + graphics invocations per first frame.
        jot = [
            jotform_first_frame(seed, text_model, image_model, batched=True)
            for seed in range(scale["jotform_pages"])
        ]
        # Clickbench: whole-screen pseudo-VSPEC => graphics tiles only.
        samples = clickbench_dataset(count=scale["clickbench_samples"], width=480, height=600)
        cb_invocations = [len(split_region_into_tiles(s.expected)) for s in samples]
        return jot, cb_invocations

    jot, cb = benchmark.pedantic(run, rounds=1, iterations=1)
    jot_t = [r.text_invocations for r in jot]
    jot_g = [r.image_invocations for r in jot]

    lines = [
        "Table VI — complexity of the evaluation datasets (reproduction)",
        "",
        f"{'Dataset':<12} {'#points':>8} {'avg T':>8} {'avg G':>8} {'total T':>9} {'total G':>9}",
        f"{'Clickbench':<12} {len(cb):>8} {'NA':>8} {np.mean(cb):>8.1f} {'NA':>9} {sum(cb):>9}",
        f"{'Jotform':<12} {len(jot):>8} {np.mean(jot_t):>8.1f} {np.mean(jot_g):>8.1f} "
        f"{sum(jot_t):>9} {sum(jot_g):>9}",
        "",
        "Paper: Clickbench G avg 880 (total 34,320); Jotform T avg 464.1 /",
        "G avg 17.3.  Shape: Clickbench is graphics-only and invocation-heavy",
        "(whole screen as one image); Jotform is text-dominated with a small",
        "graphics tail.",
    ]
    record_result("table6_complexity", "\n".join(lines))

    assert np.mean(cb) > np.mean(jot_g) * 5  # clickbench graphics-heavy
    assert np.mean(jot_t) > np.mean(jot_g)  # forms text-dominated
    assert all(r.ok for r in jot), [r.seed for r in jot if not r.ok]
