"""Table III: model accuracy under adversarial examples.

Reproduces the attack grid — FGM/BIM/MOM/FAB/APGD (Linf and L2, three
epsilons each) plus CW2 — against:

* t1 the reference multi-class character classifier,
* t2 the base text matcher,
* t3 single-font specialized matchers (averaged),
* t4/t5 sans-serif / serif specialized matchers,
* t6 the high-threshold (0.99) hardened matcher,
* g1 the reference icon classifier and g2 the graphics matcher,

and derives the paper's robustness factors (2.82x / 3.38x / 3.51x /
3.28x / 5.14x for text; ~11x for graphics).
"""

import numpy as np

from benchmarks.conftest import record_result


def _text_eval_pairs(n, seed=424):
    from repro.nn.data import text_dataset
    from repro.raster.fonts import font_registry

    obs, exp, labels = text_dataset(
        font_registry()[:2], styles=("normal",), expansions=0, seed=seed
    )
    mask = labels < 0.5
    return obs[mask][:n], exp[mask][:n], (obs[: 2 * n], exp[: 2 * n], labels[: 2 * n])


def _single_font_eval_pairs(font_index, n, seed=425):
    from repro.nn.data import text_dataset
    from repro.raster.fonts import font_registry

    obs, exp, labels = text_dataset(
        [font_registry()[font_index]], styles=("normal",), expansions=0, seed=seed
    )
    mask = labels < 0.5
    return obs[mask][:n], exp[mask][:n], (obs[: 2 * n], exp[: 2 * n], labels[: 2 * n])


def _image_eval_pairs(n, seed=426):
    from repro.nn.data import image_dataset
    from repro.raster.stacks import stack_registry

    obs, exp, labels = image_dataset(stacks=stack_registry()[:2], seed=seed)
    mask = labels < 0.5
    return obs[mask][:n], exp[mask][:n], (obs[: 2 * n], exp[: 2 * n], labels[: 2 * n])


def test_table3_adversarial_robustness(benchmark, scale):
    from repro.adversarial.attacks import AttackConfig
    from repro.adversarial.evaluate import robustness_grid
    from repro.nn.data import reference_image_dataset, reference_text_dataset
    from repro.nn.zoo import (
        get_image_model,
        get_image_reference,
        get_text_model,
        get_text_reference,
    )
    from repro.raster.fonts import font_registry
    from repro.raster.stacks import stack_registry

    n = scale["robustness_samples"]
    config = AttackConfig(steps=scale["attack_steps"])

    def run():
        reports = {}
        # --- text models -------------------------------------------------
        x_ref, y_ref = reference_text_dataset(
            font_registry()[:2], stacks=stack_registry()[:1], seed=77
        )
        reports["t1 reference"] = robustness_grid(
            "classifier", get_text_reference(), x_ref[:n], y_ref[:n],
            model_name="t1 reference", config=config,
        )
        obs, exp, clean = _text_eval_pairs(n)
        reports["t2 base text"] = robustness_grid(
            "matcher", get_text_model("base"), obs, exp,
            model_name="t2 base text", config=config,
            clean_inputs=clean[0], clean_refs=clean[1], clean_labels=clean[2],
        )
        singles = []
        for i in range(scale["single_font_models"]):
            model = get_text_model(f"font-{i}")
            s_obs, s_exp, s_clean = _single_font_eval_pairs(i, n)
            singles.append(
                robustness_grid(
                    "matcher", model, s_obs, s_exp,
                    model_name=f"t3 font-{i}", config=config,
                    clean_inputs=s_clean[0], clean_refs=s_clean[1], clean_labels=s_clean[2],
                )
            )
        reports["t3 single font"] = singles
        sans_obs, sans_exp, sans_clean = _single_font_eval_pairs(0, n)
        reports["t4 sans serif"] = robustness_grid(
            "matcher", get_text_model("sans"), sans_obs, sans_exp,
            model_name="t4 sans", config=config,
            clean_inputs=sans_clean[0], clean_refs=sans_clean[1], clean_labels=sans_clean[2],
        )
        serif_obs, serif_exp, serif_clean = _single_font_eval_pairs(1, n)
        reports["t5 serif"] = robustness_grid(
            "matcher", get_text_model("serif"), serif_obs, serif_exp,
            model_name="t5 serif", config=config,
            clean_inputs=serif_clean[0], clean_refs=serif_clean[1], clean_labels=serif_clean[2],
        )
        reports["t6 threshold 0.99"] = robustness_grid(
            "matcher", get_text_model("sans").with_threshold(0.99), sans_obs, sans_exp,
            model_name="t6 thresh-0.99", config=config,
            clean_inputs=sans_clean[0], clean_refs=sans_clean[1], clean_labels=sans_clean[2],
        )
        # --- image models --------------------------------------------------
        gx, gy = reference_image_dataset(stacks=stack_registry()[:1], per_class=6, seed=78)
        reports["g1 reference"] = robustness_grid(
            "classifier", get_image_reference(), gx[:n], gy[:n],
            model_name="g1 reference", config=config,
        )
        g_obs, g_exp, g_clean = _image_eval_pairs(n)
        reports["g2 image"] = robustness_grid(
            "matcher", get_image_model(), g_obs, g_exp,
            model_name="g2 image", config=config,
            clean_inputs=g_clean[0], clean_refs=g_clean[1], clean_labels=g_clean[2],
        )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    t3_avg = float(np.mean([r.average_attacked_accuracy for r in reports["t3 single font"]]))
    t3_clean = float(np.mean([r.clean_accuracy for r in reports["t3 single font"]]))
    text_ref = reports["t1 reference"].average_attacked_accuracy
    image_ref = reports["g1 reference"].average_attacked_accuracy

    rows = []
    paper_factors = {
        "t2 base text": 2.82, "t3 single font": 3.38, "t4 sans serif": 3.51,
        "t5 serif": 3.28, "t6 threshold 0.99": 5.14, "g2 image": 10.88,
    }
    for name in (
        "t1 reference", "t2 base text", "t3 single font", "t4 sans serif",
        "t5 serif", "t6 threshold 0.99", "g1 reference", "g2 image",
    ):
        entry = reports[name]
        if name == "t3 single font":
            clean, avg = t3_clean, t3_avg
        else:
            clean, avg = entry.clean_accuracy, entry.average_attacked_accuracy
        ref = image_ref if name.startswith("g") else text_ref
        factor = avg / max(ref, 1e-9)
        paper = paper_factors.get(name)
        rows.append(
            f"{name:<20} clean={clean * 100:6.2f}%  avg-attacked={avg * 100:6.2f}%  "
            f"factor={factor:5.2f}x" + (f"  (paper {paper:.2f}x)" if paper else "  (base)")
        )

    detail = []
    base = reports["t2 base text"]
    for attack, by_norm in sorted(base.grid.items()):
        for norm, by_eps in sorted(by_norm.items()):
            cells = "  ".join(f"eps={e:g}:{a * 100:5.1f}%" for e, a in sorted(by_eps.items()))
            detail.append(f"  t2 {attack:<5}{norm:<5} {cells}")

    content = "\n".join(
        ["Table III — accuracy under adversarial examples (reproduction)", ""]
        + rows
        + ["", "t2 per-attack detail:"]
        + detail
        + [
            "",
            "Expected shape: matchers beat multi-class references; specialization",
            "and the 0.99 threshold increase robustness; the graphics matcher is",
            "the most robust (paper: 2.82x-5.14x text, ~11x graphics).",
        ]
    )
    record_result("table3_robustness", content)

    # Shape assertions (the reproduction's claims).
    assert reports["t2 base text"].average_attacked_accuracy > text_ref
    assert reports["t6 threshold 0.99"].average_attacked_accuracy >= (
        reports["t4 sans serif"].average_attacked_accuracy
    )
    assert reports["g2 image"].average_attacked_accuracy > image_ref
