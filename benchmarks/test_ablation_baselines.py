"""Ablation: CNN validator vs pixel-compare and image-hash baselines.

Quantifies the motivation of §III-C1: pixel-by-pixel comparison false-
alarms on every benign cross-stack rendering, the robust hash cannot
separate benign variation from small semantic tampering, and the CNN
verifier does both.
"""

import numpy as np

from benchmarks.conftest import record_result


def _char_pairs(n, seed=31):
    """(observed, expected-char, tampered-char) unit inputs across stacks."""
    from repro.nn.data import CHAR_TO_INDEX
    from repro.raster.fonts import font_registry
    from repro.raster.stacks import reference_stack, stack_registry
    from repro.raster.text import render_char_tile

    rng = np.random.default_rng(seed)
    chars = "ABEFHKMNPRTWaebdhkrnw2358"
    font = font_registry()[0]
    pairs = []
    for _ in range(n):
        char = chars[int(rng.integers(len(chars)))]
        other = chars[int(rng.integers(len(chars)))]
        while other == char:
            other = chars[int(rng.integers(len(chars)))]
        stack = stack_registry()[int(rng.integers(6))]
        observed = render_char_tile(char, 32, font=font, stack=stack).pixels
        reference = render_char_tile(char, 32, font=font, stack=reference_stack()).pixels
        tampered = render_char_tile(other, 32, font=font, stack=stack).pixels
        pairs.append((observed, reference, tampered, char, other))
    return pairs


def test_ablation_validator_comparison(benchmark, scale, text_model):
    from repro.baselines.imagehash import ImageHashValidator
    from repro.baselines.pixelcmp import PixelCompareValidator
    from repro.core.verifiers import TextVerifier

    n = scale["robustness_samples"]
    pairs = _char_pairs(n)

    def run():
        pixel = PixelCompareValidator()
        hashv = ImageHashValidator(max_distance=12)
        cnn = TextVerifier(text_model, batched=True)
        stats = {name: {"fp": 0, "fn": 0} for name in ("pixel", "hash", "cnn")}
        for observed, reference, tampered, char, _other in pairs:
            # benign cross-stack pair: rejection = false positive
            if not pixel.verify_region(observed, reference):
                stats["pixel"]["fp"] += 1
            if not hashv.verify_region(observed, reference):
                stats["hash"]["fp"] += 1
            if not cnn.verify_tiles([observed], [char])[0]:
                stats["cnn"]["fp"] += 1
            # tampered pair: acceptance = false negative
            if pixel.verify_region(tampered, reference):
                stats["pixel"]["fn"] += 1
            if hashv.verify_region(tampered, reference):
                stats["hash"]["fn"] += 1
            if cnn.verify_tiles([tampered], [char])[0]:
                stats["cnn"]["fn"] += 1
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — CNN verifier vs pixel-compare and image-hash baselines",
        f"({len(pairs)} unit inputs: benign cross-stack pairs + one-char tampers)",
        "",
        f"{'Validator':<10} {'FP (benign rejected)':>22} {'FN (tamper accepted)':>22}",
    ]
    for name in ("pixel", "hash", "cnn"):
        fp = stats[name]["fp"] / len(pairs)
        fn = stats[name]["fn"] / len(pairs)
        lines.append(f"{name:<10} {fp * 100:>21.1f}% {fn * 100:>21.1f}%")
    lines += [
        "",
        "Shape (paper §III-C1): pixel comparison false-alarms on benign",
        "variation; the hash trades false alarms for missed tampering; the",
        "CNN keeps both errors low simultaneously.",
    ]
    record_result("ablation_baselines", "\n".join(lines))

    n_pairs = len(pairs)
    assert stats["pixel"]["fp"] / n_pairs > 0.5  # pixel compare unusable
    cnn_total = (stats["cnn"]["fp"] + stats["cnn"]["fn"]) / (2 * n_pairs)
    hash_total = (stats["hash"]["fp"] + stats["hash"]["fn"]) / (2 * n_pairs)
    assert cnn_total < hash_total  # CNN dominates the hash baseline
