"""Frozen inference engine: compiled forward vs the training forward.

PR 4's tentpole claim, measured directly: on matcher-sized batches the
frozen twin (fused float32 stages, per-shape workspace reuse, no
backward caches) must be at least 2x faster than the training
``Sequential`` path it compiled from, while producing **identical**
accept/reject decisions on a parity corpus of honest and tampered
matcher inputs.
"""

import time

import numpy as np

from benchmarks.conftest import record_metrics, record_result
from repro.nn.infer import frozen_twin
from repro.raster.fonts import font_registry
from repro.raster.stacks import stack_registry

#: Timing batch (a typical coalesced micro-batch / chunked plan round).
BATCH = 256

#: Median-of-k timing: robust to load spikes on shared CI machines.
TIMING_REPEATS = 9

#: The frozen path must clear this factor over the training path.
MIN_SPEEDUP = 2.0


def _median_ms(fn, repeats: int = TIMING_REPEATS) -> float:
    fn()  # warm-up: first-call workspace allocation is not steady state
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)) * 1000.0


def _tile(arr: np.ndarray, n: int) -> np.ndarray:
    """First ``n`` rows, wrapping if the corpus is smaller than ``n``."""
    reps = -(-n // arr.shape[0])
    return np.concatenate([arr] * reps, axis=0)[:n]


def _parity_corpus(kind: str):
    """Honest + tampered matcher inputs (the training-corpus generators
    produce balanced positive/negative pairs — exactly a parity corpus)."""
    from repro.nn.data import image_dataset, text_dataset

    stacks = stack_registry()[:2]
    if kind == "text":
        obs, exp, labels = text_dataset(font_registry()[:2], stacks=stacks, seed=3)
    else:
        obs, exp, labels = image_dataset(stacks=stacks, seed=5)
    return obs.astype(np.float32), exp.astype(np.float32), labels


def test_inference_engine(scale, text_model, image_model):
    rows = []
    metrics = {}
    for kind, model in (("text", text_model), ("image", image_model)):
        obs, exp, _labels = _parity_corpus(kind)

        # Decision parity on the full corpus, both engines.
        training_decisions = model.predict(obs, exp, frozen=False)
        frozen = frozen_twin(model)
        frozen_decisions = frozen.predict(obs, exp)
        assert np.array_equal(training_decisions, frozen_decisions), (
            f"{kind}: frozen decisions diverged from the training path"
        )
        prob_drift = float(
            np.max(
                np.abs(
                    model.match_probability(obs, exp, frozen=False)
                    - frozen.match_probability(obs, exp)
                )
            )
        )

        # Median-of-k timing on a fixed matcher-sized batch.
        t_obs, t_exp = _tile(obs, BATCH), _tile(exp, BATCH)
        training_ms = _median_ms(lambda: model.predict(t_obs, t_exp, frozen=False))
        frozen_ms = _median_ms(lambda: frozen.predict(t_obs, t_exp))
        speedup = training_ms / frozen_ms
        rows.append(
            {
                "kind": kind,
                "corpus": int(obs.shape[0]),
                "training_ms": training_ms,
                "frozen_ms": frozen_ms,
                "speedup": speedup,
                "prob_drift": prob_drift,
            }
        )
        metrics[kind] = {
            "batch": BATCH,
            "training_ms": round(training_ms, 3),
            "frozen_ms": round(frozen_ms, 3),
            "speedup": round(speedup, 2),
            "max_probability_drift": prob_drift,
            "decision_parity": True,
        }

    lines = [
        "Inference engine — frozen (compiled) vs training (Sequential) forward",
        "",
        f"batch size {BATCH}, median of {TIMING_REPEATS} timed runs (time.perf_counter)",
        "",
        f"{'model':<7} {'corpus':>7} {'training ms':>12} {'frozen ms':>10} "
        f"{'speedup':>8} {'max P drift':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r['kind']:<7} {r['corpus']:>7} {r['training_ms']:>12.2f} "
            f"{r['frozen_ms']:>10.2f} {r['speedup']:>7.2f}x {r['prob_drift']:>12.2e}"
        )
    lines += [
        "",
        "Decisions are identical on the full honest+tampered parity corpus",
        "for both models (asserted).  Probability drift is float32 GEMM",
        "reassociation only (the frozen conv gathers its im2col columns in",
        "channel-contiguous order); margins sit ~6 orders of magnitude above it.",
    ]
    record_result("inference_engine", "\n".join(lines))
    record_metrics("inference_engine", metrics)

    for r in rows:
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"{r['kind']}: frozen path only {r['speedup']:.2f}x faster "
            f"({r['training_ms']:.1f}ms vs {r['frozen_ms']:.1f}ms)"
        )


def test_workspace_reuse_steady_state(text_model):
    """Repeated same-shape batches must not allocate new workspace arrays."""
    frozen = frozen_twin(text_model)
    obs, exp, _ = _parity_corpus("text")
    obs, exp = _tile(obs, BATCH), _tile(exp, BATCH)
    frozen.predict(obs, exp)
    before = frozen.workspace_stats()
    for _ in range(5):
        frozen.predict(obs, exp)
    after = frozen.workspace_stats()

    def total_allocations(stats):
        return sum(a["allocations"] for arenas in stats.values() for a in arenas)

    assert total_allocations(after) == total_allocations(before)
