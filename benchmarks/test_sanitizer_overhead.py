"""witness-san overhead: soak sessions/sec with the sanitizer on vs off.

Drives the same soak slice twice through the shared-executor baseline
combo — once disarmed, once with :mod:`repro.analysis.sanitizer` armed —
and records both rates plus the relative overhead into
``bench_summary.json``.  The armed run must stay clean (no lock-order
inversions, no unmodeled edges, no cross-thread pool checkouts against
the static model) and change nothing observable: same session, frame,
and certification counts as the disarmed run.  The bit-identical
fingerprint contract itself is asserted per-scenario in
``tests/test_analysis_sanitizer.py``; this benchmark quantifies what
arming costs at soak scale.

Also micro-times the *disarmed* seam on the hottest instrumented path
(``PlanBuffers.reserve``) so the zero-cost-when-off claim is a recorded
number, not a comment.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_metrics, record_result


def _disarmed_reserve_ns(iters: int = 20000) -> float:
    """Mean ns per steady-state ``reserve`` hit with the seam unset."""
    from repro.core.planbuf import PlanBuffers

    pool = PlanBuffers()
    pool.reserve("bench", 64, (8,))  # warm: later calls are pure hits
    t0 = time.perf_counter()
    for _ in range(iters):
        pool.reserve("bench", 64, (8,))
    return (time.perf_counter() - t0) / iters * 1e9


def test_sanitizer_overhead(scale, text_model, image_model):
    from repro.analysis import sanitizer
    from repro.scenarios import baseline_combo, default_soak_specs, run_soak

    specs = default_soak_specs()
    if scale["name"] != "paper":
        specs = specs[:4]
    baseline = baseline_combo("shared", "frozen")

    def drive():
        return run_soak(
            specs,
            combos=(baseline,),
            text_model=text_model,
            image_model=image_model,
            threads=2,
        )

    off = drive()
    model = sanitizer.static_lock_model()
    with sanitizer.sanitized() as state:
        on = drive()
    problems = state.check(model)
    summary = state.summary()

    off_sps = off.sessions_per_second
    on_sps = on.sessions_per_second
    overhead_pct = (off_sps / on_sps - 1.0) * 100.0 if on_sps > 0 else float("inf")
    reserve_ns = _disarmed_reserve_ns()

    content = "\n".join(
        [
            "witness-san overhead (shared/frozen baseline, 2 driver threads)",
            f"scenarios: {off.scenarios}  sessions: {off.sessions_total}",
            f"sessions/s disarmed: {off_sps:.2f}   armed: {on_sps:.2f}   "
            f"overhead: {overhead_pct:+.1f}%",
            f"armed run: {summary['acquires']} acquisitions, "
            f"{summary['pairs']} distinct order pairs, "
            f"{summary['pool_checks']} pool checkouts, "
            f"{len(problems)} violations",
            f"disarmed reserve hot path: {reserve_ns:.0f} ns/call",
        ]
    )
    record_result("sanitizer_overhead", content)
    record_metrics(
        "sanitizer_overhead",
        {
            "scenarios": off.scenarios,
            "sessions_total": off.sessions_total,
            "sessions_per_second_off": round(off_sps, 3),
            "sessions_per_second_on": round(on_sps, 3),
            "overhead_pct": round(overhead_pct, 2),
            "acquires": summary["acquires"],
            "order_pairs": summary["pairs"],
            "pool_checks": summary["pool_checks"],
            "violations": len(problems),
            "disarmed_reserve_ns": round(reserve_ns, 1),
        },
    )

    assert off.ok, off.summary()
    assert on.ok, on.summary()
    assert problems == [], problems
    assert summary["acquires"] > 0 and summary["pool_checks"] > 0, summary
    # Arming is observation-only: the soak's outcome accounting must not
    # move by a single session, frame, or certificate.
    assert (on.sessions_total, on.frames_total, on.certified_total) == (
        off.sessions_total,
        off.frames_total,
        off.certified_total,
    )
