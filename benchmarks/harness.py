"""Shared machinery for the evaluation benchmarks (Tables VI-IX, Figs 5-6).

Wraps the paper's two workloads:

* **Jotform first-frame validation** — render a generated form on a
  client rendering stack and validate the first display frame against its
  VSPEC, measuring wall time and model invocations.
* **Interactive sessions** — drive a full vWitness session with the
  honest-user model filling the form (the paper's "recorded interactions
  of filling out a form").
* **Clickbench whole-screen validation** — pseudo-VSPEC validation of a
  screenshot pair with the graphics model only.
* **Service throughput** — N guest sessions (sequential or genuinely
  concurrent) through one shared :class:`WitnessService`, measured in
  sessions per second.

Every service-level workload takes an ``executor`` mode (``"inline"`` or
``"shared"``), so the same benchmarks measure the in-thread path and the
cross-session micro-batching runtime without code edits; the pytest
``--executor`` option (see ``benchmarks/conftest.py``) selects it suite-
wide.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

from repro.core.caches import DigestCache
from repro.core.display import DisplayValidator
from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.crypto import CertificateAuthority
from repro.datasets.forms import jotform_page, sample_user_entries
from repro.raster.stacks import stack_registry
from repro.server import WebServer
from repro.server.generate import build_vspec
from repro.web.browser import Browser
from repro.web.extension import BrowserExtension
from repro.web.hypervisor import Machine
from repro.web.user import HonestUser


@dataclass
class FirstFrameResult:
    """One first-frame validation measurement (incl. plan-size stats)."""

    seed: int
    ok: bool
    seconds: float
    text_invocations: int
    image_invocations: int
    plan_text_units: int = 0
    plan_image_pairs: int = 0
    text_forwards: int = 0
    image_forwards: int = 0

    @property
    def plan_units(self) -> int:
        return self.plan_text_units + self.plan_image_pairs

    @property
    def forwards(self) -> int:
        return self.text_forwards + self.image_forwards


def jotform_first_frame(
    seed: int, text_model, image_model, batched: bool, inference: str = "frozen"
) -> FirstFrameResult:
    """Validate the first display frame of a generated form."""
    page = jotform_page(seed)
    vspec = build_vspec(copy.deepcopy(page), f"jf-{seed}")
    stack = stack_registry()[seed % len(stack_registry())]
    machine = Machine(640, min(600, vspec.height))
    browser = Browser(machine, copy.deepcopy(page), stack=stack)
    browser.paint()
    frame = machine.sample_framebuffer().pixels
    cache = DigestCache()
    text_verifier = TextVerifier(
        text_model, batched=batched, cache=cache.scoped("text"), inference=inference
    )
    image_verifier = ImageVerifier(
        image_model, batched=batched, cache=cache.scoped("image"), inference=inference
    )
    validator = DisplayValidator(vspec, text_verifier, image_verifier)
    t0 = time.perf_counter()
    result = validator.validate(frame)
    seconds = time.perf_counter() - t0
    return FirstFrameResult(
        seed=seed,
        ok=result.ok,
        seconds=seconds,
        text_invocations=result.text_invocations,
        image_invocations=result.image_invocations,
        plan_text_units=result.plan_text_units,
        plan_image_pairs=result.plan_image_pairs,
        text_forwards=result.text_forwards,
        image_forwards=result.image_forwards,
    )


def fill_page_as_user(user: HonestUser, page, entries: dict) -> None:
    """Drive the honest user through every field of a generated form."""
    from repro.scenarios.scripts import fill_elements

    fill_elements(user, page, entries)


def run_interactive_session(
    seed: int,
    text_model,
    image_model,
    batched: bool,
    caching: bool = True,
    executor: str = "inline",
    inference: str = "frozen",
):
    """A full witnessed session on a generated form with an honest user.

    Runs through the service API: a fresh per-call :class:`WitnessService`
    (it shares the process-wide warm models) vending one session handle.
    ``executor="shared"`` routes the session through the cross-session
    micro-batching runtime; it presupposes plan batching, so unbatched
    (CPU-setup) rows silently stay inline.  Returns
    ``(decision, report, virtual_session_seconds)``.
    """
    from repro.core.service import WitnessConfig, WitnessService

    ca = CertificateAuthority()
    server = WebServer(ca)
    page_id = f"jf-{seed}"
    server.register_page(page_id, jotform_page(seed))
    client_page = server.serve_page(page_id)
    machine = Machine(640, 600)
    browser = Browser(machine, client_page, stack=stack_registry()[seed % len(stack_registry())])
    service = WitnessService(
        ca,
        WitnessConfig(
            batched=batched,
            caching=caching,
            sampler_seed=seed,
            executor=executor if batched else "inline",
            inference=inference,
        ),
        text_model=text_model,
        image_model=image_model,
    )
    with service:
        with service.open_session(machine) as witness:
            extension = BrowserExtension(browser, server, witness)
            vspec = extension.acquire_vspecs(page_id)
            browser.paint()
            extension.begin_session()
            user = HonestUser(browser, seed=seed)
            entries = sample_user_entries(client_page, seed)
            fill_page_as_user(user, client_page, entries)
            body = dict(client_page.form_values())
            body["session_id"] = vspec.session_id
            session_seconds = machine.clock.now() / 1000.0
            decision = extension.end_session(body)
            return decision, witness.report, session_seconds


@dataclass
class FleetResult:
    """Everything a fleet run produced, for throughput/forward accounting."""

    decisions: list
    reports: list
    service: object
    peak_active: int
    wall_seconds: float
    runtime_stats: dict = field(default_factory=dict)

    @property
    def certified(self) -> int:
        return sum(bool(d.certified) for d in self.decisions)

    @property
    def total_forwards(self) -> int:
        """Model forward passes the whole fleet actually executed.

        Inline mode: each session's forwards are exclusively its own, so
        the per-report counters sum exactly.  Shared mode: flushes are
        co-owned by many sessions, so the authoritative count is the
        runtime's global ``forwards_total`` (which includes any shed
        inline fallbacks).
        """
        runtime = self.runtime_stats.get("runtime")
        if runtime is not None:
            return runtime["forwards_total"]
        return sum(r.text_forwards + r.image_forwards for r in self.reports)

    @property
    def forwards_saved(self) -> int:
        runtime = self.runtime_stats.get("runtime")
        return runtime["forwards_saved_total"] if runtime is not None else 0


def run_fleet_sessions(
    n_sessions: int,
    text_model,
    image_model,
    *,
    threads: int = 1,
    page_seeds=(0,),
    batched: bool = True,
    caching: bool = True,
    executor: str = "inline",
    concurrent_connect: bool = False,
    config_overrides: dict | None = None,
) -> FleetResult:
    """A fleet of guest sessions through ONE shared :class:`WitnessService`.

    Guest ``i`` renders the form of ``page_seeds[i % len(page_seeds)]``
    (a mixed fleet re-validates more than one page); every session ends
    with a certification decision, and the runtime-stats snapshot is
    taken before the service closes.  Two arrival shapes:

    * default — all sessions are opened up front on the caller's thread
      (``peak_active`` is guaranteed to reach ``n_sessions``), then the
      form fills are driven on up to ``threads`` worker threads;
    * ``concurrent_connect=True`` — each guest's whole life (connect →
      first-frame validation → fill → submit) runs on a worker thread,
      the realistic arrival pattern, which is also where the shared
      executor coalesces the expensive first-frame plans across guests.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.service import WitnessConfig
    from repro.server.webserver import WitnessedSite

    config = WitnessConfig(
        batched=batched, caching=caching, executor=executor, **(config_overrides or {})
    )
    site = WitnessedSite(config=config, text_model=text_model, image_model=image_model)
    for seed in dict.fromkeys(page_seeds):
        site.register_page(f"jf-{seed}", jotform_page(seed))

    def fill_and_submit(index, client):
        user = HonestUser(client.browser, seed=index)
        entries = sample_user_entries(client.browser.page, index)
        fill_page_as_user(user, client.browser.page, entries)
        return client.submit()

    with site.service:
        t0 = time.perf_counter()
        if concurrent_connect and threads > 1:

            def guest(index):
                client = site.connect(
                    f"jf-{page_seeds[index % len(page_seeds)]}", display=(640, 600)
                )
                return client, fill_and_submit(index, client)

            with ThreadPoolExecutor(max_workers=threads) as pool:
                pairs = list(pool.map(guest, range(n_sessions)))
            clients = [client for client, _ in pairs]
            decisions = [decision for _, decision in pairs]
            peak = site.service.registry.peak_active
        else:
            clients = [
                site.connect(f"jf-{page_seeds[i % len(page_seeds)]}", display=(640, 600))
                for i in range(n_sessions)
            ]
            peak = site.service.registry.peak_active
            if threads > 1:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    decisions = list(
                        pool.map(lambda pair: fill_and_submit(*pair), enumerate(clients))
                    )
            else:
                decisions = [fill_and_submit(i, c) for i, c in enumerate(clients)]
        wall = time.perf_counter() - t0
        return FleetResult(
            decisions=decisions,
            reports=[client.witness.report for client in clients],
            service=site.service,
            peak_active=peak,
            wall_seconds=wall,
            runtime_stats=site.service.runtime_stats(),
        )


def summarize(values) -> dict:
    """mean/max/min/stdev summary used across the timing tables."""
    import numpy as np

    arr = np.asarray(list(values), dtype=float)
    return {
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "min": float(arr.min()),
        "stdev": float(arr.std()),
    }
