"""Table II: validation model details (parameters, training data sizes)."""

from benchmarks.conftest import record_result


def test_table2_model_details(benchmark, scale):
    from repro.nn.data import image_dataset, text_dataset
    from repro.nn.zoo import _profile, build_image_matcher, build_text_matcher
    from repro.raster.fonts import font_registry
    from repro.raster.stacks import stack_registry

    def build():
        prof = _profile()
        fonts = font_registry()[: prof["fonts"]]
        stacks = stack_registry()[: prof["stacks"]]
        text = build_text_matcher()
        image = build_image_matcher()
        obs_t, _exp_t, _lab_t = text_dataset(
            fonts, stacks=stacks, styles=prof["styles"], expansions=prof["expansions"], seed=7
        )
        obs_g, _exp_g, _lab_g = image_dataset(stacks=stacks, seed=11)
        return text, image, len(obs_t), len(obs_g)

    text, image, n_text, n_image = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Table II — validation model details (reproduction)",
        f"{'Model':<10} {'inputs':<46} {'#params':>9} {'#train':>8}",
        f"{'Text':<10} {'rendered 32x32 char tile + expected char':<46} "
        f"{text.num_params:>9,} {n_text:>8,}",
        f"{'Graphics':<10} {'observed 32x32 region + expected region':<46} "
        f"{image.num_params:>9,} {n_image:>8,}",
        "",
        "Paper: text 352,097 params / 556,512 train; graphics 1,761,089 / 620,217.",
        "Reproduction models are scaled down for CPU-only training (DESIGN.md);",
        "both remain binary VSPEC-anchored matchers with CNN feature extraction.",
    ]
    record_result("table2_models", "\n".join(lines))
    assert text.num_params > 10_000
    assert image.num_params > 10_000
    assert n_text > 500 and n_image > 200
