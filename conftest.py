"""Repo-level pytest configuration.

Registers the ``--executor`` option here (the rootdir conftest is the
only place option registration is guaranteed to load from, whatever
subset of the tree is being run) so the service-level benchmarks can be
pointed at the cross-session micro-batching runtime without code edits:

    pytest benchmarks/test_service_throughput.py --executor=shared

``REPRO_BENCH_EXECUTOR`` is the environment equivalent for CI matrices;
the command-line option wins when both are set (resolution lives in the
``executor_mode`` fixture of ``benchmarks/conftest.py``).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        choices=("inline", "shared"),
        default=None,
        help=(
            "Plan-execution mode for service-level benchmarks: 'inline' "
            "(per-session, the default) or 'shared' (cross-session "
            "micro-batching runtime)."
        ),
    )
    parser.addoption(
        "--inference",
        choices=("frozen", "training"),
        default=None,
        help=(
            "Inference engine for service-level benchmarks: 'frozen' "
            "(compiled fused forward paths, the default) or 'training' "
            "(the layer-by-layer Sequential forward). "
            "REPRO_BENCH_INFERENCE is the environment equivalent."
        ),
    )
