"""Repo-level pytest configuration.

Registers the ``--executor`` option here (the rootdir conftest is the
only place option registration is guaranteed to load from, whatever
subset of the tree is being run) so the service-level benchmarks can be
pointed at the cross-session micro-batching runtime without code edits:

    pytest benchmarks/test_service_throughput.py --executor=shared

``REPRO_BENCH_EXECUTOR`` is the environment equivalent for CI matrices;
the command-line option wins when both are set (resolution lives in the
``executor_mode`` fixture of ``benchmarks/conftest.py``).

``REPRO_WITNESS_SAN=1`` arms witness-san (the runtime lock-order and
pool-confinement sanitizer, :mod:`repro.analysis.sanitizer`) for the
whole pytest session: every lock ordering and pooled checkout the run
performs is recorded and cross-checked against the static model at
teardown — an inversion, an unmodeled edge, or a cross-thread pool
access fails the session.  The CI ``sanitizer`` job runs the runtime
and pool suites this way.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _witness_san():
    if os.environ.get("REPRO_WITNESS_SAN") != "1":
        yield
        return
    from repro.analysis import sanitizer

    state = sanitizer.enable()
    # Build (and cache) the static model up front: doing it at teardown
    # would hide analysis-pass errors until after the whole run.
    model = sanitizer.static_lock_model()
    yield
    sanitizer.disable()
    problems = state.check(model)
    summary = state.summary()
    assert not problems, (
        "witness-san: runtime concurrency violations "
        f"(after {summary['acquires']} acquisitions, "
        f"{summary['pool_checks']} pool checkouts):\n" + "\n".join(problems)
    )


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        choices=("inline", "shared"),
        default=None,
        help=(
            "Plan-execution mode for service-level benchmarks: 'inline' "
            "(per-session, the default) or 'shared' (cross-session "
            "micro-batching runtime)."
        ),
    )
    parser.addoption(
        "--inference",
        choices=("frozen", "training"),
        default=None,
        help=(
            "Inference engine for service-level benchmarks: 'frozen' "
            "(compiled fused forward paths, the default) or 'training' "
            "(the layer-by-layer Sequential forward). "
            "REPRO_BENCH_INFERENCE is the environment equivalent."
        ),
    )
